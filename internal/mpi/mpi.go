// Package mpi is a miniature message-passing runtime reproducing the
// communication substrate of the paper's OSKI-PETSc baseline: "MPICH
// 1.2.7p1 configured to use the shared-memory (ch_shmem) device where
// message passing is replaced with memory copying".
//
// Ranks are goroutines; the transport is buffered channels carrying
// explicitly copied payloads — exactly the double-copy (sender packs,
// receiver unpacks) that makes ch_shmem communication cost real memory
// bandwidth, the effect behind the paper's 30%-average communication share
// (§6.2). Every byte copied is counted, so the executable baseline and the
// analytic model (internal/oski) can be cross-checked.
//
// The API is the tiny MPI subset PETSc's MatMult needs: point-to-point
// send/receive with tags, barrier, and allreduce.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// World is a communicator: a fixed set of ranks with mailboxes between
// every pair.
type World struct {
	size      int
	mailboxes []chan message // size*size channels, indexed sender*size+receiver
	barrier   *barrier
	bytes     atomic.Int64 // total payload bytes copied (sender side)
	messages  atomic.Int64
}

type message struct {
	tag     int
	payload []float64
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("mpi: world size %d", n)
	}
	w := &World{
		size:      n,
		mailboxes: make([]chan message, n*n),
		barrier:   newBarrier(n),
	}
	for i := range w.mailboxes {
		// Deep buffering keeps the simple exchange patterns deadlock-free
		// without asynchronous progress threads.
		w.mailboxes[i] = make(chan message, 64)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesCopied returns the total payload bytes that crossed the transport
// (counting the sender-side copy; the receiver-side copy doubles the
// memory traffic and is accounted by callers, as ch_shmem does).
func (w *World) BytesCopied() int64 { return w.bytes.Load() }

// Messages returns the number of point-to-point messages sent.
func (w *World) Messages() int64 { return w.messages.Load() }

// Rank is one process's handle on the world.
type Rank struct {
	w  *World
	id int
}

// Rank returns the handle for rank id.
func (w *World) Rank(id int) (*Rank, error) {
	if id < 0 || id >= w.size {
		return nil, fmt.Errorf("mpi: rank %d outside world of %d", id, w.size)
	}
	return &Rank{w: w, id: id}, nil
}

// ID returns this rank's index.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// Send copies data to rank dst with the given tag. The copy is explicit:
// the receiver never aliases the sender's buffer (ch_shmem semantics).
func (r *Rank) Send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= r.w.size {
		return fmt.Errorf("mpi: send to rank %d outside world of %d", dst, r.w.size)
	}
	payload := make([]float64, len(data))
	copy(payload, data)
	r.w.bytes.Add(int64(len(data)) * 8)
	r.w.messages.Add(1)
	r.w.mailboxes[r.id*r.w.size+dst] <- message{tag: tag, payload: payload}
	return nil
}

// Recv receives the next message from rank src with the given tag,
// copying it into buf (which must be exactly the right length). Messages
// from the same sender with other tags are NOT reordered past each other —
// this tiny runtime requires tag agreement in program order, which the
// SpMV exchange satisfies.
func (r *Rank) Recv(src, tag int, buf []float64) error {
	if src < 0 || src >= r.w.size {
		return fmt.Errorf("mpi: recv from rank %d outside world of %d", src, r.w.size)
	}
	msg := <-r.w.mailboxes[src*r.w.size+r.id]
	if msg.tag != tag {
		return fmt.Errorf("mpi: rank %d expected tag %d from %d, got %d", r.id, tag, src, msg.tag)
	}
	if len(msg.payload) != len(buf) {
		return fmt.Errorf("mpi: rank %d message length %d, buffer %d", r.id, len(msg.payload), len(buf))
	}
	copy(buf, msg.payload) // receiver-side unpack copy
	return nil
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.w.barrier.await() }

// AllreduceSum sums x across ranks, leaving the result in every rank's
// out. Implemented as gather-to-0 + broadcast, all through the counted
// transport.
func (r *Rank) AllreduceSum(x, out []float64) error {
	const tagGather, tagBcast = -1, -2
	if len(x) != len(out) {
		return fmt.Errorf("mpi: allreduce length mismatch %d vs %d", len(x), len(out))
	}
	if r.w.size == 1 {
		copy(out, x)
		return nil
	}
	if r.id == 0 {
		acc := make([]float64, len(x))
		copy(acc, x)
		buf := make([]float64, len(x))
		for src := 1; src < r.w.size; src++ {
			if err := r.Recv(src, tagGather, buf); err != nil {
				return err
			}
			for i := range acc {
				acc[i] += buf[i]
			}
		}
		for dst := 1; dst < r.w.size; dst++ {
			if err := r.Send(dst, tagBcast, acc); err != nil {
				return err
			}
		}
		copy(out, acc)
		return nil
	}
	if err := r.Send(0, tagGather, x); err != nil {
		return err
	}
	return r.Recv(0, tagBcast, out)
}

// Run spawns fn on every rank and waits for all to finish, returning the
// first error.
func (w *World) Run(fn func(r *Rank) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for id := 0; id < w.size; id++ {
		rank, err := w.Rank(id)
		if err != nil {
			return err
		}
		go func(id int, rank *Rank) {
			defer wg.Done()
			errs[id] = fn(rank)
		}(id, rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for phase == b.phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

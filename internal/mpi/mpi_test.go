package mpi

import (
	"sync"
	"testing"
)

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("zero-size world accepted")
	}
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 {
		t.Errorf("size %d", w.Size())
	}
	if _, err := w.Rank(3); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := w.Rank(-1); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestSendRecvCopies(t *testing.T) {
	w, _ := NewWorld(2)
	src := []float64{1, 2, 3}
	err := w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			if err := r.Send(1, 5, src); err != nil {
				return err
			}
			// Mutating after send must not affect the receiver (copy
			// semantics of ch_shmem).
			src[0] = 99
		case 1:
			buf := make([]float64, 3)
			if err := r.Recv(0, 5, buf); err != nil {
				return err
			}
			if buf[0] != 1 || buf[2] != 3 {
				t.Errorf("received %v", buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.BytesCopied() != 24 {
		t.Errorf("bytes copied %d, want 24", w.BytesCopied())
	}
	if w.Messages() != 1 {
		t.Errorf("messages %d, want 1", w.Messages())
	}
}

func TestRecvErrors(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			return r.Send(1, 1, []float64{1})
		case 1:
			buf := make([]float64, 2) // wrong length
			if err := r.Recv(0, 1, buf); err == nil {
				t.Error("length mismatch accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := w.Rank(0)
	if err := r0.Send(9, 0, nil); err == nil {
		t.Error("send to invalid rank accepted")
	}
	if err := r0.Recv(9, 0, nil); err == nil {
		t.Error("recv from invalid rank accepted")
	}
}

func TestTagMismatchDetected(t *testing.T) {
	w, _ := NewWorld(2)
	_ = w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			return r.Send(1, 1, []float64{1})
		case 1:
			buf := make([]float64, 1)
			if err := r.Recv(0, 2, buf); err == nil {
				t.Error("tag mismatch accepted")
			}
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	w, _ := NewWorld(4)
	var mu sync.Mutex
	order := []int{}
	err := w.Run(func(r *Rank) error {
		mu.Lock()
		order = append(order, 0) // phase-0 marker
		mu.Unlock()
		r.Barrier()
		mu.Lock()
		order = append(order, 1) // phase-1 marker
		mu.Unlock()
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All phase-0 markers must precede all phase-1 markers.
	for i, v := range order[:4] {
		if v != 0 {
			t.Fatalf("position %d: phase %d before barrier released", i, v)
		}
	}
	for i, v := range order[4:] {
		if v != 1 {
			t.Fatalf("position %d: phase %d after barrier", i+4, v)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		w, _ := NewWorld(n)
		results := make([][]float64, n)
		err := w.Run(func(r *Rank) error {
			x := []float64{float64(r.ID()), 1}
			out := make([]float64, 2)
			if err := r.AllreduceSum(x, out); err != nil {
				return err
			}
			results[r.ID()] = out
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		wantSum := float64(n*(n-1)) / 2
		for id, res := range results {
			if res[0] != wantSum || res[1] != float64(n) {
				t.Errorf("n=%d rank %d: %v, want [%g %g]", n, id, res, wantSum, float64(n))
			}
		}
	}
}

func TestAllreduceLengthMismatch(t *testing.T) {
	w, _ := NewWorld(1)
	r0, _ := w.Rank(0)
	if err := r0.AllreduceSum([]float64{1}, make([]float64, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestManyMessagesNoDeadlock(t *testing.T) {
	// Exercise buffering: every rank sends a burst to every other rank
	// before anyone receives.
	w, _ := NewWorld(4)
	err := w.Run(func(r *Rank) error {
		for round := 0; round < 10; round++ {
			for dst := 0; dst < r.Size(); dst++ {
				if dst == r.ID() {
					continue
				}
				if err := r.Send(dst, round, []float64{float64(round)}); err != nil {
					return err
				}
			}
		}
		buf := make([]float64, 1)
		for round := 0; round < 10; round++ {
			for src := 0; src < r.Size(); src++ {
				if src == r.ID() {
					continue
				}
				if err := r.Recv(src, round, buf); err != nil {
					return err
				}
				if buf[0] != float64(round) {
					t.Errorf("round %d: got %v", round, buf[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

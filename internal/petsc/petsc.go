// Package petsc is an executable reproduction of the distributed-memory
// SpMV the paper benchmarks as its parallel baseline: PETSc's MPIAIJ
// MatMult over the mpi substrate, with the serial per-rank kernel
// optionally tuned by OSKI ("OSKI-PETSc", §2.1).
//
// The structure follows PETSc:
//
//   - 1-D block-row distribution with equal numbers of rows per process by
//     default (the default the paper calls out for its load-imbalance
//     failure mode);
//   - the local matrix split into a "diagonal" block (columns owned by
//     this rank's slice of x) and an "off-diagonal" block whose columns
//     are compressed to a ghost index space;
//   - a static VecScatter: each multiply sends exactly the x entries other
//     ranks' off-diagonal blocks reference, through the byte-counted
//     copy-based transport of internal/mpi.
//
// internal/oski models this baseline analytically for the performance
// study; this package exists to run it for real (correctness, comm-volume
// cross-checks, and host measurements).
package petsc

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// EncodeFunc turns a rank's local block into an encoded matrix. The
// default (nil) keeps CSR32; pass an OSKI tuner for OSKI-PETSc.
type EncodeFunc func(*matrix.CSR32) (matrix.Format, error)

// Mat is a distributed sparse matrix ready for repeated multiplication.
type Mat struct {
	world      *mpi.World
	rows, cols int
	rowRanges  *partition.Partition // y ownership
	colRanges  *partition.Partition // x ownership
	locals     []*localMat
}

// localMat is one rank's share.
type localMat struct {
	rank      int
	rowLo     int
	rowHi     int
	colLo     int
	colHi     int
	diag      kernel.Kernel // nil when empty
	off       kernel.Kernel // nil when empty; columns renumbered to ghost space
	ghosts    []int32       // sorted global columns the off block references
	sendTo    [][]int32     // per destination rank: LOCAL x indices to ship
	recvFrom  []int         // per source rank: number of ghost entries
	ghostBase []int         // prefix offsets of each source rank's ghosts
}

// rowPtrOf builds a CSR row pointer from per-row counts of a COO.
func ownerOf(p *partition.Partition, idx int) int {
	// Ranges are contiguous and ordered; binary search the owner.
	lo, hi := 0, len(p.Ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		r := p.Ranges[mid]
		switch {
		case idx < r.Lo:
			hi = mid
		case idx >= r.Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// NewMat distributes csr across the world with equal-rows (and equal-cols
// for x) ownership and builds the static scatter.
func NewMat(csr *matrix.CSR32, world *mpi.World, encode EncodeFunc) (*Mat, error) {
	n := world.Size()
	rowRanges, err := partition.EqualRows(csr.RowPtr, n)
	if err != nil {
		return nil, err
	}
	// x is distributed by columns, equal split (PETSc: the vector layout).
	colPtr := make([]int64, csr.C+1) // synthetic uniform "row pointer" over columns
	for i := range colPtr {
		colPtr[i] = int64(i)
	}
	colRanges, err := partition.EqualRows(colPtr, n)
	if err != nil {
		return nil, err
	}
	if encode == nil {
		encode = func(c *matrix.CSR32) (matrix.Format, error) { return c, nil }
	}

	m := &Mat{world: world, rows: csr.R, cols: csr.C,
		rowRanges: rowRanges, colRanges: colRanges}

	// Build each rank's diag/off split.
	for rank := 0; rank < n; rank++ {
		rr := rowRanges.Ranges[rank]
		cr := colRanges.Ranges[rank]
		lm := &localMat{rank: rank, rowLo: rr.Lo, rowHi: rr.Hi, colLo: cr.Lo, colHi: cr.Hi}

		diag := matrix.NewCOO(rr.Rows(), cr.Hi-cr.Lo)
		ghostSet := map[int32]bool{}
		type entry struct {
			r, c int32
			v    float64
		}
		var offEntries []entry
		for i := rr.Lo; i < rr.Hi; i++ {
			for k := csr.RowPtr[i]; k < csr.RowPtr[i+1]; k++ {
				c := int(csr.Col[k])
				if c >= cr.Lo && c < cr.Hi {
					if err := diag.Append(i-rr.Lo, c-cr.Lo, csr.Val[k]); err != nil {
						return nil, err
					}
				} else {
					ghostSet[int32(c)] = true
					offEntries = append(offEntries, entry{int32(i - rr.Lo), int32(c), csr.Val[k]})
				}
			}
		}
		lm.ghosts = make([]int32, 0, len(ghostSet))
		for c := range ghostSet {
			lm.ghosts = append(lm.ghosts, c)
		}
		sort.Slice(lm.ghosts, func(a, b int) bool { return lm.ghosts[a] < lm.ghosts[b] })
		ghostIdx := make(map[int32]int32, len(lm.ghosts))
		for i, c := range lm.ghosts {
			ghostIdx[c] = int32(i)
		}
		off := matrix.NewCOO(rr.Rows(), len(lm.ghosts))
		for _, e := range offEntries {
			if err := off.Append(int(e.r), int(ghostIdx[e.c]), e.v); err != nil {
				return nil, err
			}
		}

		if diag.NNZ() > 0 {
			dcsr, err := matrix.NewCSR[uint32](diag)
			if err != nil {
				return nil, err
			}
			enc, err := encode(dcsr)
			if err != nil {
				return nil, err
			}
			lm.diag, err = kernel.Compile(enc)
			if err != nil {
				return nil, err
			}
		}
		if off.NNZ() > 0 {
			ocsr, err := matrix.NewCSR[uint32](off)
			if err != nil {
				return nil, err
			}
			enc, err := encode(ocsr)
			if err != nil {
				return nil, err
			}
			lm.off, err = kernel.Compile(enc)
			if err != nil {
				return nil, err
			}
		}
		m.locals = append(m.locals, lm)
	}

	// Build the static scatter lists: for each (receiver, owner) pair, the
	// owner ships the receiver's ghost columns that it owns, in the
	// receiver's ghost order.
	for _, lm := range m.locals {
		lm.sendTo = make([][]int32, n)
		lm.recvFrom = make([]int, n)
		lm.ghostBase = make([]int, n+1)
	}
	for _, recv := range m.locals {
		// Group the receiver's ghosts by owner; ghosts are sorted, and
		// ownership ranges are contiguous, so groups are contiguous runs.
		for _, g := range recv.ghosts {
			owner := ownerOf(m.colRanges, int(g))
			if owner < 0 {
				return nil, fmt.Errorf("petsc: column %d unowned", g)
			}
			ownerLocal := g - int32(m.locals[owner].colLo)
			m.locals[owner].sendTo[recv.rank] = append(m.locals[owner].sendTo[recv.rank], ownerLocal)
			recv.recvFrom[owner]++
		}
		for o := 0; o < n; o++ {
			recv.ghostBase[o+1] = recv.ghostBase[o] + recv.recvFrom[o]
		}
	}
	return m, nil
}

// Dims returns the global dimensions.
func (m *Mat) Dims() (int, int) { return m.rows, m.cols }

// CommBytes reports the cumulative transport bytes (sender-side copies)
// since the world was created.
func (m *Mat) CommBytes() int64 { return m.world.BytesCopied() }

// Mul computes y = A·x, scattering the global x and gathering the global
// y through the distributed ranks. It is deterministic: each y element has
// exactly one writer.
func (m *Mat) Mul(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("petsc: len(x)=%d, want %d", len(x), m.cols)
	}
	y := make([]float64, m.rows)
	err := m.world.Run(func(r *mpi.Rank) error {
		lm := m.locals[r.ID()]
		xLocal := x[lm.colLo:lm.colHi]

		// Post all sends (ch_shmem: the payload is packed/copied here).
		const tagScatter = 7
		for dst, list := range lm.sendTo {
			if len(list) == 0 {
				continue
			}
			buf := make([]float64, len(list))
			for i, li := range list {
				buf[i] = xLocal[li]
			}
			if err := r.Send(dst, tagScatter, buf); err != nil {
				return err
			}
		}
		// Receive ghosts in rank order (matches ghost sort order because
		// ownership ranges are ascending in the column space).
		ghostX := make([]float64, len(lm.ghosts))
		for src := 0; src < r.Size(); src++ {
			cnt := lm.recvFrom[src]
			if cnt == 0 {
				continue
			}
			if err := r.Recv(src, tagScatter, ghostX[lm.ghostBase[src]:lm.ghostBase[src+1]]); err != nil {
				return err
			}
		}

		yLocal := y[lm.rowLo:lm.rowHi]
		if lm.diag != nil {
			if err := lm.diag.MulAdd(yLocal, xLocal); err != nil {
				return err
			}
		}
		if lm.off != nil {
			if err := lm.off.MulAdd(yLocal, ghostX); err != nil {
				return err
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return y, nil
}

// GhostCounts returns, per rank, how many external x entries its
// off-diagonal block references — the quantity the analytic model charges
// as communication (oski.ModelPETSc).
func (m *Mat) GhostCounts() []int {
	out := make([]int, len(m.locals))
	for i, lm := range m.locals {
		out[i] = len(lm.ghosts)
	}
	return out
}

// NNZShare returns each rank's share of the global nonzeros (the load-
// imbalance diagnostic of §6.2).
func (m *Mat) NNZShare() []float64 {
	var total int64
	counts := make([]int64, len(m.locals))
	for i, lm := range m.locals {
		if lm.diag != nil {
			counts[i] += lm.diag.Format().NNZ()
		}
		if lm.off != nil {
			counts[i] += lm.off.Format().NNZ()
		}
		total += counts[i]
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

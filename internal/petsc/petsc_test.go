package petsc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/oski"
)

func fillRandom(m *matrix.COO, rng *rand.Rand, n int) *matrix.COO {
	type pos struct{ r, c int32 }
	seen := make(map[pos]bool, n)
	for len(m.Val) < n {
		r := int32(rng.Intn(m.R))
		c := int32(rng.Intn(m.C))
		if seen[pos{r, c}] {
			continue
		}
		seen[pos{r, c}] = true
		m.RowIdx = append(m.RowIdx, r)
		m.ColIdx = append(m.ColIdx, c)
		m.Val = append(m.Val, rng.NormFloat64())
	}
	return m
}

func reference(m *matrix.COO, x []float64) []float64 {
	y := make([]float64, m.R)
	for k := range m.Val {
		y[m.RowIdx[k]] += m.Val[k] * x[m.ColIdx[k]]
	}
	return y
}

func TestDistributedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{100, 100}, {37, 211}, {211, 37}, {64, 64}} {
		m := fillRandom(matrix.NewCOO(dims[0], dims[1]), rng, dims[0]*6)
		csr, err := matrix.NewCSR[uint32](m)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, dims[1])
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := reference(m, x)
		for _, procs := range []int{1, 2, 3, 4, 7} {
			world, err := mpi.NewWorld(procs)
			if err != nil {
				t.Fatal(err)
			}
			mat, err := NewMat(csr, world, nil)
			if err != nil {
				t.Fatalf("%v procs=%d: %v", dims, procs, err)
			}
			got, err := mat.Mul(x)
			if err != nil {
				t.Fatalf("%v procs=%d: %v", dims, procs, err)
			}
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("%v procs=%d row %d: %g vs %g", dims, procs, i, got[i], want[i])
				}
			}
		}
	}
}

func TestOSKITunedLocalBlocks(t *testing.T) {
	m, err := gen.GenerateByName("FEM/Cantilever", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	csr, _ := matrix.NewCSR[uint32](m)
	x := make([]float64, csr.C)
	rng := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := reference(m, x)

	world, _ := mpi.NewWorld(4)
	am := machine.AMDX2()
	mat, err := NewMat(csr, world, func(c *matrix.CSR32) (matrix.Format, error) {
		tn, err := oski.TuneSerial(c, am)
		if err != nil {
			return nil, err
		}
		return tn.Enc, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mat.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("OSKI-PETSc row %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestCommBytesCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := fillRandom(matrix.NewCOO(120, 120), rng, 2000)
	csr, _ := matrix.NewCSR[uint32](m)
	x := make([]float64, 120)
	for i := range x {
		x[i] = 1
	}
	// Single process: no communication.
	w1, _ := mpi.NewWorld(1)
	m1, err := NewMat(csr, w1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Mul(x); err != nil {
		t.Fatal(err)
	}
	if m1.CommBytes() != 0 {
		t.Errorf("1-process comm bytes %d, want 0", m1.CommBytes())
	}
	// Four processes: comm equals 8 bytes per ghost entry per multiply.
	w4, _ := mpi.NewWorld(4)
	m4, err := NewMat(csr, w4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m4.Mul(x); err != nil {
		t.Fatal(err)
	}
	var ghosts int64
	for _, g := range m4.GhostCounts() {
		ghosts += int64(g)
	}
	if ghosts == 0 {
		t.Fatal("random 120x120 over 4 ranks should have ghost columns")
	}
	if m4.CommBytes() != 8*ghosts {
		t.Errorf("comm bytes %d, want %d (8 per ghost)", m4.CommBytes(), 8*ghosts)
	}
	// Second multiply doubles the cumulative count (static scatter).
	if _, err := m4.Mul(x); err != nil {
		t.Fatal(err)
	}
	if m4.CommBytes() != 16*ghosts {
		t.Errorf("cumulative comm bytes %d, want %d", m4.CommBytes(), 16*ghosts)
	}
}

func TestGhostCountsMatchAnalyticModel(t *testing.T) {
	// The executable scatter and the analytic oski model must agree on the
	// external-column counts... but note the analytic model uses row-range
	// ownership of x while PETSc distributes x by equal columns; for
	// square matrices with equal splits the two coincide.
	m, err := gen.GenerateByName("Economics", 0.005, 5)
	if err != nil {
		t.Fatal(err)
	}
	csr, _ := matrix.NewCSR[uint32](m)
	world, _ := mpi.NewWorld(4)
	mat, err := NewMat(csr, world, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := mat.GhostCounts()
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("scatter found no ghosts on a scatter matrix")
	}
	est, err := oski.ModelPETSc(csr, machine.AMDX2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Model charges 2x8 bytes per external column (pack+unpack).
	modelGhosts := est.CommBytes / 16
	ratio := float64(total) / float64(modelGhosts)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("executable ghosts %d vs modeled %d (ratio %.2f)", total, modelGhosts, ratio)
	}
}

func TestNNZShareImbalance(t *testing.T) {
	// Skewed matrix: equal-rows puts most nonzeros on rank 0.
	m := matrix.NewCOO(400, 400)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		for j := 0; j < 30; j++ {
			_ = m.Append(i, rng.Intn(400), rng.NormFloat64())
		}
	}
	for i := 100; i < 400; i++ {
		_ = m.Append(i, i, 1)
	}
	csr, _ := matrix.NewCSR[uint32](m)
	world, _ := mpi.NewWorld(4)
	mat, err := NewMat(csr, world, nil)
	if err != nil {
		t.Fatal(err)
	}
	share := mat.NNZShare()
	if share[0] < 0.4 {
		t.Errorf("rank 0 share %.2f, want >= 0.4 (equal-rows imbalance)", share[0])
	}
	var sum float64
	for _, s := range share {
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %f", sum)
	}
}

func TestMulValidatesLength(t *testing.T) {
	m := matrix.NewCOO(4, 4)
	_ = m.Append(0, 0, 1)
	csr, _ := matrix.NewCSR[uint32](m)
	world, _ := mpi.NewWorld(2)
	mat, err := NewMat(csr, world, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mat.Mul(make([]float64, 3)); err == nil {
		t.Error("wrong-length x accepted")
	}
}

// Property: the distributed product matches the serial reference for
// arbitrary matrices and world sizes.
func TestQuickDistributedCorrectness(t *testing.T) {
	f := func(seed int64, procs8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(50), 1+rng.Intn(50)
		m := fillRandom(matrix.NewCOO(rows, cols), rng, rng.Intn(rows*cols+1))
		csr, err := matrix.NewCSR[uint32](m)
		if err != nil {
			return false
		}
		procs := int(procs8%6) + 1
		world, err := mpi.NewWorld(procs)
		if err != nil {
			return false
		}
		mat, err := NewMat(csr, world, nil)
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, err := mat.Mul(x)
		if err != nil {
			return false
		}
		want := reference(m, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property-based tests of the iterative solvers: CG on random SPD
// matrices (suite twins from gen, symmetrized and diagonally shifted)
// must converge at every thread count, with bit-identical trajectories in
// deterministic mode; power iteration must recover a known dominant
// eigenpair; the BLAS-1 reductions must be thread-invariant in ordered
// mode. Runs under -race in CI.
package solve_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	spmv "repro"
	"repro/internal/solve"
)

// suiteSPD generates a paper-suite twin, symmetrizes it, and shifts the
// diagonal until the matrix is strictly diagonally dominant with a
// positive diagonal — a certificate of symmetric positive definiteness,
// whatever the generator produced.
func suiteSPD(t *testing.T, name string, scale float64, seed int64) *spmv.Matrix {
	t.Helper()
	m, err := spmv.GenerateSuite(name, scale, seed)
	if err != nil {
		t.Fatalf("GenerateSuite(%s): %v", name, err)
	}
	sym, err := spmv.Symmetrize(m)
	if err != nil {
		t.Fatalf("Symmetrize: %v", err)
	}
	rows, _ := sym.Dims()
	offAbs := make([]float64, rows)
	diag := make([]float64, rows)
	sym.Entries(func(i, j int, v float64) {
		if i == j {
			diag[i] += v
		} else {
			// |Σ dups| <= Σ|dups|: over-counting duplicates only makes the
			// shift more conservative.
			offAbs[i] += math.Abs(v)
		}
	})
	shift := 1.0
	for i := range offAbs {
		if need := 1 + offAbs[i] - diag[i]; need > shift {
			shift = need
		}
	}
	for i := 0; i < rows; i++ {
		if err := sym.Set(i, i, shift); err != nil {
			t.Fatalf("Set diag: %v", err)
		}
	}
	return sym
}

// symApply builds a thread-count-invariant Apply from the parallel
// symmetric operator (kernel.SymSweep's canonical reduction fixes its
// bits at every thread count).
func symApply(t *testing.T, m *spmv.Matrix, threads int) solve.Apply {
	t.Helper()
	op, err := spmv.CompileSymmetricParallel(m, threads)
	if err != nil {
		t.Fatalf("CompileSymmetricParallel(threads=%d): %v", threads, err)
	}
	return func(y, x []float64) error {
		clear(y)
		return op.MulAdd(y, x)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// residual computes ‖b − A·x‖/‖b‖ with an independent serial loop.
func residual(t *testing.T, apply solve.Apply, x, b []float64) float64 {
	t.Helper()
	ax := make([]float64, len(b))
	if err := apply(ax, x); err != nil {
		t.Fatalf("apply: %v", err)
	}
	var rr, bb float64
	for i := range b {
		d := b[i] - ax[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	return math.Sqrt(rr) / math.Sqrt(bb)
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCGRandomSPD is the headline property: for random SPD systems, CG
// converges to the requested tolerance at threads 1/2/4 with
// deterministic reductions on and off, and in deterministic mode the
// whole trajectory — residual history and final iterate — is bitwise
// identical across thread counts.
func TestCGRandomSPD(t *testing.T) {
	const tol = 1e-8
	cases := []struct {
		suite string
		scale float64
		seed  int64
	}{
		{"QCD", 0.008, 1},
		{"Economics", 0.004, 2},
		{"Epidemiology", 0.002, 3},
	}
	for _, tc := range cases {
		t.Run(tc.suite, func(t *testing.T) {
			m := suiteSPD(t, tc.suite, tc.scale, tc.seed)
			n, _ := m.Dims()
			b := randVec(rand.New(rand.NewSource(tc.seed)), n)
			for _, det := range []bool{true, false} {
				var refHist, refX []float64
				for _, threads := range []int{1, 2, 4} {
					t.Run(fmt.Sprintf("det=%v/threads=%d", det, threads), func(t *testing.T) {
						apply := symApply(t, m, threads)
						cg, err := solve.NewCG(apply, b, nil, solve.Options{
							Tol: tol, MaxIters: 3 * n, Threads: threads, Deterministic: det,
						})
						if err != nil {
							t.Fatalf("NewCG: %v", err)
						}
						if err := cg.Solve(); err != nil {
							t.Fatalf("Solve: %v", err)
						}
						if cg.Status() != solve.Converged {
							t.Fatalf("status %v after %d iters, residual %g", cg.Status(), cg.Iters(), cg.Residual())
						}
						if got := cg.Residual(); got > tol {
							t.Fatalf("reported residual %g > tol %g", got, tol)
						}
						// Independent residual check: the recurrence can drift
						// from the true residual, but not by much at 1e-8.
						if got := residual(t, apply, cg.X(), b); got > 100*tol {
							t.Fatalf("true residual %g, want <= %g", got, 100*tol)
						}
						if len(cg.History()) != cg.Iters() {
							t.Fatalf("history has %d entries, %d iters", len(cg.History()), cg.Iters())
						}
						if !det {
							return
						}
						if refHist == nil {
							refHist = append([]float64(nil), cg.History()...)
							refX = append([]float64(nil), cg.X()...)
							return
						}
						if !bitsEqual(refHist, cg.History()) {
							t.Fatalf("deterministic residual history differs from threads=1 bits")
						}
						if !bitsEqual(refX, cg.X()) {
							t.Fatalf("deterministic solution differs from threads=1 bits")
						}
					})
				}
			}
		})
	}
}

// TestCGManufacturedSolution checks the solver against a known answer:
// b = A·x* must be solved back to x* within the tolerance's reach.
func TestCGManufacturedSolution(t *testing.T) {
	m := suiteSPD(t, "QCD", 0.008, 7)
	n, _ := m.Dims()
	apply := symApply(t, m, 2)
	xStar := randVec(rand.New(rand.NewSource(7)), n)
	b := make([]float64, n)
	if err := apply(b, xStar); err != nil {
		t.Fatal(err)
	}
	cg, err := solve.NewCG(apply, b, nil, solve.Options{Tol: 1e-10, MaxIters: 3 * n, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Solve(); err != nil {
		t.Fatal(err)
	}
	var errN, refN float64
	for i, v := range cg.X() {
		d := v - xStar[i]
		errN += d * d
		refN += xStar[i] * xStar[i]
	}
	if rel := math.Sqrt(errN / refN); rel > 1e-6 {
		t.Fatalf("relative solution error %g", rel)
	}
}

// TestCGWarmStart: a non-zero initial guess must form the true initial
// residual (one Apply in the constructor) and still converge; starting at
// the exact solution converges without stepping.
func TestCGWarmStart(t *testing.T) {
	m := suiteSPD(t, "QCD", 0.008, 9)
	n, _ := m.Dims()
	apply := symApply(t, m, 1)
	xStar := randVec(rand.New(rand.NewSource(9)), n)
	b := make([]float64, n)
	if err := apply(b, xStar); err != nil {
		t.Fatal(err)
	}
	cg, err := solve.NewCG(apply, b, xStar, solve.Options{Tol: 1e-8, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cg.Status() != solve.Converged || cg.Iters() != 0 {
		t.Fatalf("exact warm start: status %v after %d iters", cg.Status(), cg.Iters())
	}
	perturbed := append([]float64(nil), xStar...)
	for i := range perturbed {
		perturbed[i] += 0.01 * perturbed[i]
	}
	cg, err = solve.NewCG(apply, b, perturbed, solve.Options{Tol: 1e-8, MaxIters: 3 * n})
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Solve(); err != nil {
		t.Fatal(err)
	}
	if cg.Status() != solve.Converged {
		t.Fatalf("warm start did not converge: %v", cg.Status())
	}
}

// TestCGBreakdown: a negative definite operator must fail fast with a
// breakdown diagnosis, not wander.
func TestCGBreakdown(t *testing.T) {
	neg := func(y, x []float64) error {
		for i := range y {
			y[i] = -x[i]
		}
		return nil
	}
	b := []float64{1, 2, 3}
	cg, err := solve.NewCG(neg, b, nil, solve.Options{Tol: 1e-8, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	done, err := cg.Step()
	if !done || err == nil || cg.Status() != solve.Failed {
		t.Fatalf("want breakdown failure, got done=%v err=%v status=%v", done, err, cg.Status())
	}
}

// TestCGBudget: with tol 0 the solver runs exactly MaxIters steps and
// reports BudgetExhausted.
func TestCGBudget(t *testing.T) {
	m := suiteSPD(t, "QCD", 0.008, 11)
	n, _ := m.Dims()
	apply := symApply(t, m, 1)
	b := randVec(rand.New(rand.NewSource(11)), n)
	cg, err := solve.NewCG(apply, b, nil, solve.Options{Tol: 0, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Solve(); err != nil {
		t.Fatal(err)
	}
	if cg.Status() != solve.BudgetExhausted || cg.Iters() != 5 {
		t.Fatalf("status %v after %d iters, want budget_exhausted after 5", cg.Status(), cg.Iters())
	}
	// Stepping a finished solver is a no-op.
	if done, err := cg.Step(); !done || err != nil {
		t.Fatalf("Step after finish: done=%v err=%v", done, err)
	}
	if cg.Iters() != 5 {
		t.Fatalf("no-op step advanced iters to %d", cg.Iters())
	}
}

// TestCGValidation covers constructor rejections.
func TestCGValidation(t *testing.T) {
	id := func(y, x []float64) error { copy(y, x); return nil }
	if _, err := solve.NewCG(id, nil, nil, solve.Options{}); err == nil {
		t.Fatal("empty b accepted")
	}
	if _, err := solve.NewCG(id, []float64{1}, []float64{1, 2}, solve.Options{}); err == nil {
		t.Fatal("mismatched x0 accepted")
	}
	if _, err := solve.NewCG(id, []float64{1}, nil, solve.Options{Tol: math.NaN()}); err == nil {
		t.Fatal("NaN tol accepted")
	}
	if _, err := solve.NewCG(id, []float64{1}, nil, solve.Options{Tol: -1}); err == nil {
		t.Fatal("negative tol accepted")
	}
	if _, err := solve.NewCG(id, []float64{math.NaN()}, nil, solve.Options{}); err == nil {
		t.Fatal("NaN b accepted")
	}
	// b = 0 converges at construction to x = 0 — also from a non-zero
	// initial guess, since 0 is the unique SPD solution (returning the
	// guess itself would be a wrong answer labeled converged).
	for _, x0 := range [][]float64{nil, {3, -4}} {
		cg, err := solve.NewCG(id, []float64{0, 0}, x0, solve.Options{Tol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if cg.Status() != solve.Converged || cg.X()[0] != 0 || cg.X()[1] != 0 {
			t.Fatalf("zero rhs (x0=%v): status %v x %v", x0, cg.Status(), cg.X())
		}
		if cg.Residual() != 0 {
			t.Fatalf("zero rhs (x0=%v): residual %g", x0, cg.Residual())
		}
	}
}

// TestPowerDominantEigenpair: on diag(1..n) the dominant eigenvalue is n
// and the eigenvector is e_n; deterministic trajectories are bitwise
// thread-invariant (the diagonal Apply is element-wise, hence exact).
func TestPowerDominantEigenpair(t *testing.T) {
	const n = 500
	apply := func(y, x []float64) error {
		for i := range y {
			y[i] = float64(i+1) * x[i]
		}
		return nil
	}
	var refHist []float64
	for _, threads := range []int{1, 2, 4} {
		pw, err := solve.NewPower(apply, n, nil, solve.Options{
			Tol: 1e-10, MaxIters: 20000, Threads: threads, Deterministic: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pw.Solve(); err != nil {
			t.Fatal(err)
		}
		if pw.Status() != solve.Converged {
			t.Fatalf("threads=%d: status %v after %d iters (residual %g)", threads, pw.Status(), pw.Iters(), pw.Residual())
		}
		if got := pw.Eigenvalue(); math.Abs(got-n) > 1e-6*n {
			t.Fatalf("threads=%d: eigenvalue %g, want %d", threads, got, n)
		}
		if got := math.Abs(pw.Vector()[n-1]); math.Abs(got-1) > 1e-4 {
			t.Fatalf("threads=%d: |v[n-1]| = %g, want 1", threads, got)
		}
		if refHist == nil {
			refHist = append([]float64(nil), pw.History()...)
		} else if !bitsEqual(refHist, pw.History()) {
			t.Fatalf("threads=%d: deterministic power trajectory differs from threads=1 bits", threads)
		}
	}
}

// TestPowerOnSuiteTwin: the symmetrized suite twin's dominant eigenvalue
// must match an independent dense-ish estimate — here, agreement between
// converged power iteration and the Rayleigh quotient recomputed by hand.
func TestPowerOnSuiteTwin(t *testing.T) {
	m := suiteSPD(t, "QCD", 0.008, 13)
	n, _ := m.Dims()
	apply := symApply(t, m, 2)
	pw, err := solve.NewPower(apply, n, nil, solve.Options{Tol: 1e-9, MaxIters: 50000, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Solve(); err != nil {
		t.Fatal(err)
	}
	if pw.Status() != solve.Converged {
		t.Fatalf("status %v after %d iters", pw.Status(), pw.Iters())
	}
	q := pw.Vector()
	aq := make([]float64, n)
	if err := apply(aq, q); err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := range q {
		num += q[i] * aq[i]
		den += q[i] * q[i]
	}
	if got, want := pw.Eigenvalue(), num/den; math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("eigenvalue %g vs recomputed Rayleigh quotient %g", got, want)
	}
}

// TestPowerValidation covers constructor rejections.
func TestPowerValidation(t *testing.T) {
	id := func(y, x []float64) error { copy(y, x); return nil }
	if _, err := solve.NewPower(id, 0, nil, solve.Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := solve.NewPower(id, 3, []float64{1}, solve.Options{}); err == nil {
		t.Fatal("mismatched v0 accepted")
	}
	if _, err := solve.NewPower(id, 2, []float64{0, 0}, solve.Options{}); err == nil {
		t.Fatal("zero v0 accepted")
	}
	// A·q = 0 must fail, not divide by zero.
	zero := func(y, x []float64) error { clear(y); return nil }
	pw, err := solve.NewPower(zero, 2, []float64{1, 0}, solve.Options{MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if done, err := pw.Step(); !done || err == nil || pw.Status() != solve.Failed {
		t.Fatalf("null-space start: done=%v err=%v status=%v", done, err, pw.Status())
	}
}

// TestBLASThreadInvariance: deterministic-mode reductions are bitwise
// identical at every thread count; parallel mode stays within a
// reassociation bound of the sequential sum.
func TestBLASThreadInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 1023, 1024, 1025, 100000} {
		x, y := randVec(rng, n), randVec(rng, n)
		ref := solve.BLAS{Threads: 1, Deterministic: true}.Dot(x, y)
		var seq float64
		for i := range x {
			seq += x[i] * y[i]
		}
		var absSum float64
		for i := range x {
			absSum += math.Abs(x[i] * y[i])
		}
		tolerance := 4 * float64(n) * 1e-16 * absSum
		for _, threads := range []int{2, 3, 4, 8} {
			det := solve.BLAS{Threads: threads, Deterministic: true}
			if got := det.Dot(x, y); math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("n=%d threads=%d: det Dot %x != %x", n, threads, math.Float64bits(got), math.Float64bits(ref))
			}
			par := solve.BLAS{Threads: threads}
			if got := par.Dot(x, y); math.Abs(got-seq) > tolerance {
				t.Fatalf("n=%d threads=%d: parallel Dot %g vs %g (tol %g)", n, threads, got, seq, tolerance)
			}
		}
	}
}

// Package solve implements the iterative methods that motivate the
// paper's SpMV optimization work — Williams et al. open by noting SpMV
// "dominates the performance of diverse applications in scientific and
// engineering computing"; the applications in question are outer solvers
// that call the kernel thousands of times. The package provides
// unpreconditioned Conjugate Gradient (symmetric positive definite
// operators) and power iteration (general square operators) as stateful
// steppers: construct once, Step per iteration, observe the residual
// history between steps. The serving layer hosts them as server-resident
// solver sessions whose vectors never leave the process.
//
// Both solvers consume the operator only through an Apply function, so
// any SpMV path works: a compiled spmv.Operator, the serving layer's
// snapshot-swapped fused path, or a test stub.
//
// Determinism: the BLAS-1 reductions (Dot, Norm2) come in two modes. In
// deterministic mode every reduction is computed over fixed 1024-element
// blocks whose partials are summed in ascending block order — a summation
// tree that depends only on the vector length, never on the thread count,
// so solver trajectories are bit-reproducible across Threads settings
// whenever Apply is too. In parallel (non-deterministic) mode each thread
// sums one contiguous chunk and the chunk partials are added in chunk
// order: fastest, but the bits shift with Threads.
package solve

import (
	"math"
	"sync"
)

// detBlockLen is the fixed reduction-block length of deterministic mode.
// The summation tree is (⌈n/1024⌉ ordered partials, each a sequential
// 1024-element sum) for every thread count — small enough that partials
// parallelize, large enough that the serial combine is noise.
const detBlockLen = 1024

// parallelGrain is the minimum per-thread element count worth a
// goroutine; below it the work runs on the calling goroutine. Execution
// strategy never changes the summation tree, so this threshold affects
// wall-clock only, never bits.
const parallelGrain = 2048

// BLAS is a configured set of fused BLAS-1 operations. The zero value is
// serial and non-deterministic-mode (which coincide: one thread's chunked
// reduction is the plain sequential sum).
type BLAS struct {
	// Threads is the parallel width; <= 1 means serial.
	Threads int
	// Deterministic selects the ordered fixed-block reduction whose bits
	// are invariant to Threads.
	Deterministic bool
}

func (b BLAS) threads() int {
	if b.Threads < 1 {
		return 1
	}
	return b.Threads
}

// ranges splits [0, n) into parts contiguous ranges of near-equal length.
func ranges(n, parts int) [][2]int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, 0, parts)
	for p := 0; p < parts; p++ {
		lo := n * p / parts
		hi := n * (p + 1) / parts
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runParts executes f(part) for every part index, spreading parts over at
// most threads goroutines when each goroutine's share of totalWork (in
// elements) is large enough to pay for it — deterministic mode has many
// small fixed blocks, so the gate must look at the per-goroutine batch,
// not the per-part size. The assignment of parts to goroutines never
// affects results: every part writes only its own slot.
func runParts(parts, threads, totalWork int, f func(part int)) {
	if threads > parts {
		threads = parts
	}
	if threads <= 1 || totalWork/threads < parallelGrain {
		for p := 0; p < parts; p++ {
			f(p)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads - 1)
	for w := 1; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			for p := w; p < parts; p += threads {
				f(p)
			}
		}(w)
	}
	for p := 0; p < parts; p += threads {
		f(p)
	}
	wg.Wait()
}

// reduce computes the sum of partial(lo, hi) over [0, n) under the
// configured mode. partial must be a pure sequential sum of its range.
func (b BLAS) reduce(n int, partial func(lo, hi int) float64) float64 {
	if n == 0 {
		return 0
	}
	var rs [][2]int
	if b.Deterministic {
		blocks := (n + detBlockLen - 1) / detBlockLen
		rs = make([][2]int, blocks)
		for i := range rs {
			lo := i * detBlockLen
			rs[i] = [2]int{lo, min(lo+detBlockLen, n)}
		}
	} else {
		rs = ranges(n, b.threads())
	}
	partials := make([]float64, len(rs))
	runParts(len(rs), b.threads(), n, func(p int) {
		partials[p] = partial(rs[p][0], rs[p][1])
	})
	var s float64
	for _, v := range partials {
		s += v
	}
	return s
}

// Dot returns xᵀy. It panics when the lengths differ (programmer error,
// like the stdlib's copy contract). The fixed-block partial sums reduce
// in block order, so the result bits are thread-count invariant — the
// solver-trajectory determinism contract.
//
//spmv:deterministic
func (b BLAS) Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("solve: Dot length mismatch")
	}
	return b.reduce(len(x), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		return s
	})
}

// Norm2 returns ‖x‖₂, the square root of the mode's Dot(x, x).
//
//spmv:deterministic
func (b BLAS) Norm2(x []float64) float64 {
	return math.Sqrt(b.Dot(x, x))
}

// Axpy computes y ← y + α·x. Element-wise, so its bits never depend on
// mode or thread count.
//
//spmv:deterministic
func (b BLAS) Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("solve: Axpy length mismatch")
	}
	rs := ranges(len(x), b.threads())
	runParts(len(rs), b.threads(), len(x), func(p int) {
		for i := rs[p][0]; i < rs[p][1]; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Xpay computes y ← x + α·y — the CG search-direction update
// p = r + β·p. Element-wise, bit-stable under any mode.
//
//spmv:deterministic
func (b BLAS) Xpay(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("solve: Xpay length mismatch")
	}
	rs := ranges(len(x), b.threads())
	runParts(len(rs), b.threads(), len(x), func(p int) {
		for i := rs[p][0]; i < rs[p][1]; i++ {
			y[i] = x[i] + alpha*y[i]
		}
	})
}

// Scale computes x ← α·x. Element-wise, bit-stable under any mode.
//
//spmv:deterministic
func (b BLAS) Scale(alpha float64, x []float64) {
	rs := ranges(len(x), b.threads())
	runParts(len(rs), b.threads(), len(x), func(p int) {
		for i := rs[p][0]; i < rs[p][1]; i++ {
			x[i] *= alpha
		}
	})
}

package solve

import (
	"fmt"
	"math"
)

// Apply computes y ← A·x, overwriting y. Implementations must not retain
// the slices. The solvers call it once per iteration — in a serving
// session this is the fused SpMV path, the multiplication the paper's
// whole optimization stack exists to make fast.
type Apply func(y, x []float64) error

// Options configures one solver instance.
type Options struct {
	// Tol is the relative-residual convergence target: CG stops when
	// ‖b − A·x‖ ≤ Tol·‖b‖, power iteration when ‖A·q − λq‖ ≤ Tol·max(|λ|, 1).
	// 0 disables the test (the solver runs to its budget); negative or
	// non-finite values are rejected.
	Tol float64
	// MaxIters is the step budget; <= 0 means DefaultMaxIters.
	MaxIters int
	// Threads is the BLAS-1 parallel width; <= 1 means serial.
	Threads int
	// Deterministic selects the ordered fixed-block reductions whose bits
	// are invariant to Threads (see BLAS). With a thread-invariant Apply —
	// the symmetric kernel, or the serving layer's deterministic CSR path —
	// the whole trajectory is bit-reproducible.
	Deterministic bool
}

// DefaultMaxIters is the step budget applied when Options.MaxIters <= 0.
const DefaultMaxIters = 500

// Status is a solver's lifecycle state.
type Status int

const (
	// Running: the solver accepts further Steps.
	Running Status = iota
	// Converged: the residual target was met.
	Converged
	// BudgetExhausted: MaxIters steps ran without meeting the target.
	BudgetExhausted
	// Failed: Apply errored, the iteration broke down (CG on a
	// non-positive-definite operator), or the residual left the floats.
	Failed
)

func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Converged:
		return "converged"
	case BudgetExhausted:
		return "budget_exhausted"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

func (o *Options) normalize() error {
	if math.IsNaN(o.Tol) || math.IsInf(o.Tol, 0) || o.Tol < 0 {
		return fmt.Errorf("solve: tolerance %g is not a finite non-negative number", o.Tol)
	}
	if o.MaxIters <= 0 {
		o.MaxIters = DefaultMaxIters
	}
	return nil
}

// CG is an unpreconditioned Conjugate Gradient iteration over a symmetric
// positive definite operator: per step one Apply, two ordered dot
// products, and three fused vector updates. The classic bandwidth-bound
// consumer of tuned SpMV — §2.1's motivation for every byte the tuner
// shaves off the matrix stream.
type CG struct {
	apply Apply
	blas  BLAS
	opt   Options

	x, r, p, ap []float64
	rr          float64 // rᵀr carried between steps
	bnorm       float64
	iters       int
	status      Status
	err         error
	history     []float64 // relative residual after each step
}

// NewCG prepares a CG solve of A·x = b from initial guess x0 (zero when
// nil). When x0 is non-zero the constructor runs one Apply to form the
// true initial residual r = b − A·x0.
func NewCG(apply Apply, b, x0 []float64, opt Options) (*CG, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	n := len(b)
	if n == 0 {
		return nil, fmt.Errorf("solve: empty right-hand side")
	}
	if x0 != nil && len(x0) != n {
		return nil, fmt.Errorf("solve: len(x0)=%d, len(b)=%d", len(x0), n)
	}
	c := &CG{
		apply: apply,
		blas:  BLAS{Threads: opt.Threads, Deterministic: opt.Deterministic},
		opt:   opt,
		x:     make([]float64, n),
		r:     append([]float64(nil), b...),
		ap:    make([]float64, n),
	}
	if x0 != nil {
		copy(c.x, x0)
		if err := apply(c.ap, x0); err != nil {
			return nil, fmt.Errorf("solve: initial residual: %w", err)
		}
		c.blas.Axpy(-1, c.ap, c.r) // r = b − A·x0
	}
	c.p = append([]float64(nil), c.r...)
	c.rr = c.blas.Dot(c.r, c.r)
	c.bnorm = c.blas.Norm2(b)
	if !isFiniteVal(c.rr) || !isFiniteVal(c.bnorm) {
		return nil, fmt.Errorf("solve: non-finite right-hand side or initial guess")
	}
	if c.bnorm == 0 {
		// b = 0: for SPD A the unique solution is x = 0, whatever the
		// initial guess was; relative residuals are undefined, so report
		// the exact solution converged rather than iterating.
		clear(c.x)
		clear(c.r)
		clear(c.p)
		c.rr = 0
		c.status = Converged
		return c, nil
	}
	if opt.Tol > 0 && math.Sqrt(c.rr)/c.bnorm <= opt.Tol {
		c.status = Converged
	}
	return c, nil
}

// Step runs one CG iteration, returning done = true once the solver has
// left Running. Stepping a finished solver is a no-op returning its
// terminal error, if any.
func (c *CG) Step() (done bool, err error) {
	if c.status != Running {
		return true, c.err
	}
	if c.rr == 0 {
		// Exact zero residual: the iterate solves the system to the last
		// bit; another step would divide by pᵀAp = 0.
		c.status = Converged
		return true, nil
	}
	clear(c.ap)
	if err := c.apply(c.ap, c.p); err != nil {
		return c.fail(fmt.Errorf("solve: apply: %w", err))
	}
	pap := c.blas.Dot(c.p, c.ap)
	if !(pap > 0) || math.IsInf(pap, 0) {
		// For SPD A, pᵀAp > 0 for every non-zero p; anything else is a
		// breakdown (indefinite operator, or the residual vanished to
		// exactly zero between the convergence test and this step).
		return c.fail(fmt.Errorf("solve: CG breakdown at iteration %d: pᵀAp = %g (operator not positive definite?)", c.iters, pap))
	}
	alpha := c.rr / pap
	c.blas.Axpy(alpha, c.p, c.x)
	c.blas.Axpy(-alpha, c.ap, c.r)
	rrNew := c.blas.Dot(c.r, c.r)
	c.iters++
	relres := math.Sqrt(rrNew) / c.bnorm
	c.history = append(c.history, relres)
	if !isFiniteVal(relres) {
		return c.fail(fmt.Errorf("solve: residual diverged at iteration %d", c.iters))
	}
	c.blas.Xpay(rrNew/c.rr, c.r, c.p) // p = r + β·p
	c.rr = rrNew
	switch {
	case c.opt.Tol > 0 && relres <= c.opt.Tol:
		c.status = Converged
	case c.iters >= c.opt.MaxIters:
		c.status = BudgetExhausted
	}
	return c.status != Running, nil
}

func (c *CG) fail(err error) (bool, error) {
	c.status = Failed
	c.err = err
	return true, err
}

// Solve steps until the solver leaves Running and returns the terminal
// error, if any.
func (c *CG) Solve() error {
	for {
		if done, err := c.Step(); done {
			return err
		}
	}
}

// X returns the current iterate (live storage; copy before mutating).
func (c *CG) X() []float64 { return c.x }

// Iters returns the number of completed steps.
func (c *CG) Iters() int { return c.iters }

// Status returns the solver's lifecycle state.
func (c *CG) Status() Status { return c.status }

// Err returns the terminal error of a Failed solver.
func (c *CG) Err() error { return c.err }

// Residual returns the latest relative residual ‖r‖/‖b‖.
func (c *CG) Residual() float64 {
	if c.bnorm == 0 {
		return 0
	}
	return math.Sqrt(c.rr) / c.bnorm
}

// History returns the relative residual after each completed step (live
// storage; copy before mutating).
func (c *CG) History() []float64 { return c.history }

func isFiniteVal(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

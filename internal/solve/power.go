package solve

import (
	"fmt"
	"math"
)

// Power is a power-iteration stepper estimating the dominant eigenpair of
// a general square operator: per step one Apply, a Rayleigh quotient, an
// eigen-residual norm, and a renormalization — the PageRank-style workload
// that, like CG, amortizes one matrix stream per iteration.
type Power struct {
	apply Apply
	blas  BLAS
	opt   Options

	q, aq, tmp []float64
	lambda     float64
	iters      int
	status     Status
	err        error
	history    []float64 // relative eigen-residual after each step
}

// NewPower prepares a power iteration of dimension n starting from v0 (a
// deterministic pseudo-random unit vector when nil — fixed bits for every
// caller, so trajectories are reproducible without shipping a start
// vector).
func NewPower(apply Apply, n int, v0 []float64, opt Options) (*Power, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("solve: dimension %d", n)
	}
	if v0 != nil && len(v0) != n {
		return nil, fmt.Errorf("solve: len(v0)=%d, n=%d", len(v0), n)
	}
	p := &Power{
		apply: apply,
		blas:  BLAS{Threads: opt.Threads, Deterministic: opt.Deterministic},
		opt:   opt,
		q:     make([]float64, n),
		aq:    make([]float64, n),
		tmp:   make([]float64, n),
	}
	if v0 != nil {
		copy(p.q, v0)
	} else {
		// SplitMix64 from a fixed seed: full-period, dimension-only bits.
		state := uint64(0x9e3779b97f4a7c15)
		for i := range p.q {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			p.q[i] = float64(z>>11)/float64(1<<53) - 0.5
		}
	}
	norm := p.blas.Norm2(p.q)
	if !isFiniteVal(norm) || norm == 0 {
		return nil, fmt.Errorf("solve: start vector has norm %g", norm)
	}
	p.blas.Scale(1/norm, p.q)
	return p, nil
}

// Step runs one power iteration, returning done = true once the solver
// has left Running.
func (p *Power) Step() (done bool, err error) {
	if p.status != Running {
		return true, p.err
	}
	clear(p.aq)
	if err := p.apply(p.aq, p.q); err != nil {
		return p.fail(fmt.Errorf("solve: apply: %w", err))
	}
	// q is unit, so the Rayleigh quotient is qᵀ(Aq).
	p.lambda = p.blas.Dot(p.q, p.aq)
	copy(p.tmp, p.aq)
	p.blas.Axpy(-p.lambda, p.q, p.tmp)
	resid := p.blas.Norm2(p.tmp) / math.Max(math.Abs(p.lambda), 1)
	p.iters++
	p.history = append(p.history, resid)
	if !isFiniteVal(resid) || !isFiniteVal(p.lambda) {
		return p.fail(fmt.Errorf("solve: power iteration diverged at iteration %d", p.iters))
	}
	norm := p.blas.Norm2(p.aq)
	if norm == 0 {
		return p.fail(fmt.Errorf("solve: A·q vanished at iteration %d (start vector in the null space?)", p.iters))
	}
	p.blas.Scale(1/norm, p.aq)
	p.q, p.aq = p.aq, p.q
	switch {
	case p.opt.Tol > 0 && resid <= p.opt.Tol:
		p.status = Converged
	case p.iters >= p.opt.MaxIters:
		p.status = BudgetExhausted
	}
	return p.status != Running, nil
}

func (p *Power) fail(err error) (bool, error) {
	p.status = Failed
	p.err = err
	return true, err
}

// Solve steps until the solver leaves Running and returns the terminal
// error, if any.
func (p *Power) Solve() error {
	for {
		if done, err := p.Step(); done {
			return err
		}
	}
}

// Eigenvalue returns the latest Rayleigh-quotient estimate of the
// dominant eigenvalue.
func (p *Power) Eigenvalue() float64 { return p.lambda }

// Vector returns the current unit eigenvector estimate (live storage;
// copy before mutating).
func (p *Power) Vector() []float64 { return p.q }

// Iters returns the number of completed steps.
func (p *Power) Iters() int { return p.iters }

// Status returns the solver's lifecycle state.
func (p *Power) Status() Status { return p.status }

// Err returns the terminal error of a Failed solver.
func (p *Power) Err() error { return p.err }

// Residual returns the latest relative eigen-residual, or +Inf before the
// first step.
func (p *Power) Residual() float64 {
	if len(p.history) == 0 {
		return math.Inf(1)
	}
	return p.history[len(p.history)-1]
}

// History returns the relative eigen-residual after each completed step
// (live storage; copy before mutating).
func (p *Power) History() []float64 { return p.history }

package spmv_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	spmv "repro"
)

// buildRandom fills an n×m matrix with k random entries.
func buildRandom(t testing.TB, rng *rand.Rand, rows, cols, k int) *spmv.Matrix {
	t.Helper()
	m := spmv.NewMatrix(rows, cols)
	for i := 0; i < k; i++ {
		if err := m.Set(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// naiveMul computes y = A x via the Entries iterator.
func naiveMul(m *spmv.Matrix, x []float64) []float64 {
	rows, _ := m.Dims()
	y := make([]float64, rows)
	m.Entries(func(i, j int, v float64) { y[i] += v * x[j] })
	return y
}

func TestCompileAndMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := buildRandom(t, rng, 200, 300, 2500)
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := naiveMul(m, x)

	for _, opts := range []spmv.TuneOptions{
		spmv.NaiveOptions(),
		spmv.DefaultTuneOptions(),
		{RegisterBlock: true, ReduceIndices: true},
	} {
		op, err := spmv.Compile(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := op.Mul(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: row %d: %g vs %g", op.KernelName(), i, got[i], want[i])
			}
		}
	}
}

func TestCompileParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := buildRandom(t, rng, 500, 500, 8000)
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial, err := spmv.Compile(m, spmv.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	ys, err := serial.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 3, 8} {
		par, err := spmv.CompileParallel(m, spmv.DefaultTuneOptions(), threads, 2)
		if err != nil {
			t.Fatal(err)
		}
		if par.Threads() != threads {
			t.Errorf("threads %d, want %d", par.Threads(), threads)
		}
		yp, err := par.Mul(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range yp {
			if math.Abs(yp[i]-ys[i]) > 1e-9 {
				t.Fatalf("threads=%d row %d: %g vs %g", threads, i, yp[i], ys[i])
			}
		}
	}
	if _, err := spmv.CompileParallel(m, spmv.DefaultTuneOptions(), 0, 1); err == nil {
		t.Error("0 threads accepted")
	}
}

func TestMulAddAccumulates(t *testing.T) {
	m := spmv.NewMatrix(2, 2)
	if err := m.Set(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	op, err := spmv.Compile(m, spmv.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{10, 20}
	if err := op.MulAdd(y, []float64{2, 0}); err != nil {
		t.Fatal(err)
	}
	if y[0] != 16 || y[1] != 20 {
		t.Errorf("y = %v, want [16 20]", y)
	}
}

func TestSetBounds(t *testing.T) {
	m := spmv.NewMatrix(2, 2)
	if err := m.Set(2, 0, 1); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := m.Set(0, -1, 1); err == nil {
		t.Error("negative col accepted")
	}
}

func TestDuplicatesSummedAtCompile(t *testing.T) {
	m := spmv.NewMatrix(1, 1)
	_ = m.Set(0, 0, 2)
	_ = m.Set(0, 0, 3)
	op, err := spmv.Compile(m, spmv.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	y, err := op.Mul([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 5 {
		t.Errorf("duplicate sum: %g, want 5", y[0])
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := buildRandom(t, rng, 30, 40, 200)
	var buf bytes.Buffer
	if err := m.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := spmv.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, c1 := m.Dims()
	r2, c2 := got.Dims()
	if r1 != r2 || c1 != c2 || m.NNZ() != got.NNZ() {
		t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
			r1, c1, m.NNZ(), r2, c2, got.NNZ())
	}
	if _, err := spmv.ReadMatrixMarket(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestGenerateSuiteNames(t *testing.T) {
	names := spmv.SuiteNames()
	if len(names) != 14 {
		t.Fatalf("%d suite names", len(names))
	}
	m, err := spmv.GenerateSuite("QCD", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Error("empty QCD twin")
	}
	if _, err := spmv.GenerateSuite("Bogus", 0.01, 5); err == nil {
		t.Error("unknown suite name accepted")
	}
	st := m.Stats()
	if st.Rows == 0 || st.NNZPerRow <= 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestSavingsAndFootprint(t *testing.T) {
	m, err := spmv.GenerateSuite("FEM/Cantilever", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := spmv.Compile(m, spmv.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := spmv.Compile(m, spmv.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	if naive.Savings() != 0 {
		t.Errorf("naive savings %.2f, want 0", naive.Savings())
	}
	if tuned.Savings() <= 0.1 {
		t.Errorf("tuned savings %.2f, want > 0.1 on a FEM matrix", tuned.Savings())
	}
	if tuned.FootprintBytes() >= naive.FootprintBytes() {
		t.Error("tuning did not shrink the footprint")
	}
	if len(tuned.Decisions()) == 0 {
		t.Error("no decisions recorded")
	}
	if tuned.NNZ() != naive.NNZ() {
		t.Error("nnz changed under tuning")
	}
}

func TestEntriesIteration(t *testing.T) {
	m := spmv.NewMatrix(3, 3)
	_ = m.Set(0, 1, 2)
	_ = m.Set(2, 2, 4)
	var count int
	var sum float64
	m.Entries(func(i, j int, v float64) {
		count++
		sum += v
	})
	if count != 2 || sum != 6 {
		t.Errorf("count %d sum %g", count, sum)
	}
}

// Property: the public API computes the same product as the naive triple
// loop for arbitrary matrices and tuning options.
func TestQuickPublicAPICorrectness(t *testing.T) {
	f := func(seed int64, flags uint8, threads8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(60)
		m := spmv.NewMatrix(rows, cols)
		k := rng.Intn(rows * cols)
		for i := 0; i < k; i++ {
			if m.Set(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()) != nil {
				return false
			}
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := naiveMul(m, x)

		opt := spmv.TuneOptions{
			RegisterBlock: flags&1 != 0,
			ReduceIndices: flags&2 != 0,
			AllowBCOO:     flags&4 != 0,
		}
		threads := int(threads8%4) + 1
		op, err := spmv.CompileParallel(m, opt, threads, 1)
		if err != nil {
			return false
		}
		got, err := op.Mul(x)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompileSymmetric(t *testing.T) {
	// Symmetric 2D Laplacian.
	const side = 20
	n := side * side
	m := spmv.NewMatrix(n, n)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := at(r, c)
			_ = m.Set(i, i, 4)
			for _, d := range [2][2]int{{1, 0}, {0, 1}} {
				rr, cc := r+d[0], c+d[1]
				if rr < side && cc < side {
					_ = m.Set(i, at(rr, cc), -1)
					_ = m.Set(at(rr, cc), i, -1)
				}
			}
		}
	}
	sym, err := spmv.CompileSymmetric(m)
	if err != nil {
		t.Fatal(err)
	}
	full, err := spmv.Compile(m, spmv.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sym.FootprintBytes() >= full.FootprintBytes() {
		t.Errorf("symmetric footprint %d not below full %d",
			sym.FootprintBytes(), full.FootprintBytes())
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	ys, err := sym.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	yf, err := full.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys {
		if math.Abs(ys[i]-yf[i]) > 1e-9 {
			t.Fatalf("row %d: %g vs %g", i, ys[i], yf[i])
		}
	}
	// Asymmetric input must be rejected.
	bad := spmv.NewMatrix(2, 2)
	_ = bad.Set(0, 1, 1)
	if _, err := spmv.CompileSymmetric(bad); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

func TestCompileMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := buildRandom(t, rng, 60, 80, 900)
	op, err := spmv.Compile(m, spmv.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	const nv = 3
	multi, err := spmv.CompileMulti(m, nv)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Vectors() != nv {
		t.Errorf("vectors %d", multi.Vectors())
	}
	xs := make([][]float64, nv)
	for v := range xs {
		xs[v] = make([]float64, 80)
		for i := range xs[v] {
			xs[v][i] = rng.NormFloat64()
		}
	}
	got, err := multi.MulAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	for v := range xs {
		want, err := op.Mul(xs[v])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[v][i]-want[i]) > 1e-9 {
				t.Fatalf("vector %d row %d: %g vs %g", v, i, got[v][i], want[i])
			}
		}
	}
	// Wrong vector count rejected.
	if _, err := multi.MulAll(xs[:2]); err == nil {
		t.Error("wrong vector count accepted")
	}
	if _, err := spmv.CompileMulti(m, 0); err == nil {
		t.Error("0 vectors accepted")
	}
}

func TestReorderRCM(t *testing.T) {
	// Shuffled banded matrix: RCM must narrow it and preserve products.
	const n = 150
	rng := rand.New(rand.NewSource(15))
	shuffle := rng.Perm(n)
	m := spmv.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		_ = m.Set(shuffle[i], shuffle[i], 2)
		if i+1 < n {
			_ = m.Set(shuffle[i], shuffle[i+1], -1)
			_ = m.Set(shuffle[i+1], shuffle[i], -1)
		}
	}
	rm, ro, err := spmv.ReorderRCM(m)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Stats().Bandwidth >= m.Stats().Bandwidth/4 {
		t.Errorf("RCM bandwidth %d not far below original %d",
			rm.Stats().Bandwidth, m.Stats().Bandwidth)
	}
	op, err := spmv.Compile(m, spmv.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	rop, err := spmv.Compile(rm, spmv.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := op.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	py, err := rop.Mul(ro.Permute(x))
	if err != nil {
		t.Fatal(err)
	}
	got := ro.Unpermute(py)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("row %d: %g vs %g", i, got[i], want[i])
		}
	}
	// Rectangular matrices are rejected.
	rect := spmv.NewMatrix(2, 3)
	if _, _, err := spmv.ReorderRCM(rect); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

// TestOperatorMultiRHSHooks covers the serving-layer hooks: cached Multi
// views, nonzero-balanced RowPartition, sharded MulAddRows, and Traffic.
func TestOperatorMultiRHSHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := buildRandom(t, rng, 120, 90, 1000)
	op, err := spmv.Compile(m, spmv.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Multi views are cached per width.
	mo4a, err := op.Multi(4)
	if err != nil {
		t.Fatal(err)
	}
	mo4b, err := op.Multi(4)
	if err != nil {
		t.Fatal(err)
	}
	if mo4a != mo4b {
		t.Error("Multi(4) not cached")
	}
	if mo2, err := op.Multi(2); err != nil || mo2 == mo4a {
		t.Errorf("Multi(2) = %v, %v", mo2, err)
	}
	if r, c := mo4a.Dims(); r != 120 || c != 90 {
		t.Errorf("multi dims %dx%d", r, c)
	}

	// RowPartition tiles the rows and balances nonzeros.
	parts, err := op.RowPartition(4)
	if err != nil {
		t.Fatal(err)
	}
	at, total := 0, int64(0)
	for _, p := range parts {
		if p.Lo != at {
			t.Fatalf("partition gap at row %d: %+v", at, parts)
		}
		at = p.Hi
		total += p.NNZ
	}
	if at != 120 || total != op.NNZ() {
		t.Errorf("partition covers %d rows / %d nnz, want 120 / %d", at, total, op.NNZ())
	}

	// A sweep sharded by the partition matches per-vector reference Muls.
	xs := make([][]float64, 4)
	for v := range xs {
		xs[v] = make([]float64, 90)
		for i := range xs[v] {
			xs[v][i] = rng.NormFloat64()
		}
	}
	xBlock, err := spmv.Interleave(xs)
	if err != nil {
		t.Fatal(err)
	}
	yBlock := make([]float64, 120*4)
	for _, p := range parts {
		if err := mo4a.MulAddRows(yBlock, xBlock, p.Lo, p.Hi); err != nil {
			t.Fatal(err)
		}
	}
	ys, err := spmv.Deinterleave(yBlock, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range ys {
		want := naiveMul(m, xs[v])
		for i := range want {
			if math.Abs(ys[v][i]-want[i]) > 1e-9 {
				t.Fatalf("vector %d row %d: %g vs %g", v, i, ys[v][i], want[i])
			}
		}
	}

	// Traffic models the sweep and scales under MultiRHS.
	tr, err := op.Traffic(spmv.TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MatrixBytes <= 0 || tr.Flops != 2*op.NNZ() {
		t.Errorf("traffic %+v", tr)
	}
	fused := tr.MultiRHS(4)
	if fused.MatrixBytes != tr.MatrixBytes || fused.Flops != 4*tr.Flops || fused.SourceBytes != 4*tr.SourceBytes {
		t.Errorf("MultiRHS scaling wrong: %+v vs %+v", fused, tr)
	}

	// Symmetric operators route Multi through the symmetric sweep; only
	// external row sharding (RowPartition / MulAddRows) is refused, since
	// the symmetric scatter escapes any row range.
	sym := spmv.NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		if err := sym.Set(i, i, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	sop, err := spmv.CompileSymmetric(sym)
	if err != nil {
		t.Fatal(err)
	}
	smo, err := sop.Multi(2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := smo.MulAll([][]float64{{1, 1, 1}, {2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sys[0][0] != 1 || sys[0][1] != 2 || sys[0][2] != 3 || sys[1][2] != 6 {
		t.Errorf("symmetric MulAll = %v", sys)
	}
	if err := smo.MulAddRows(make([]float64, 6), make([]float64, 6), 0, 2); err == nil {
		t.Error("MulAddRows on symmetric view accepted")
	}
	if _, err := sop.RowPartition(2); err == nil {
		t.Error("RowPartition on symmetric operator accepted")
	}
}

// TestSymmetrizeAndCompileSymmetricParallel covers the public symmetric
// pipeline: Symmetrize makes any square matrix exactly symmetric, the
// parallel operator matches the serial one bit for bit at every thread
// count, and its multi-RHS views reproduce the single-vector bits per
// lane while keeping the halved matrix stream.
func TestSymmetrizeAndCompileSymmetricParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := buildRandom(t, rng, 400, 400, 5000)
	if _, err := spmv.CompileSymmetric(m); err == nil {
		t.Fatal("random matrix unexpectedly symmetric")
	}
	sym, err := spmv.Symmetrize(m)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := spmv.CompileSymmetric(sym)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Symmetric() || serial.KernelName() != "symcsr" {
		t.Errorf("serial operator: symmetric=%v kernel=%q", serial.Symmetric(), serial.KernelName())
	}
	if serial.FootprintBytes() >= serial.BaselineBytes() {
		t.Errorf("symmetric footprint %d not below CSR32 baseline %d",
			serial.FootprintBytes(), serial.BaselineBytes())
	}
	d := serial.Decisions()
	if len(d) != 1 || d[0].Format != "SymCSR" {
		t.Errorf("decisions = %+v", d)
	}

	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := serial.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy against the assembled entries.
	ref := naiveMul(sym, x)
	for i := range want {
		if math.Abs(want[i]-ref[i]) > 1e-9 {
			t.Fatalf("row %d: %g vs %g", i, want[i], ref[i])
		}
	}
	// Bit-parity across thread counts.
	for _, threads := range []int{2, 4} {
		par, err := spmv.CompileSymmetricParallel(sym, threads)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Mul(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("threads=%d row %d: %x vs %x", threads, i, got[i], want[i])
			}
		}
		// Multi-RHS lanes reproduce the width-1 bits.
		mo, err := par.Multi(4)
		if err != nil {
			t.Fatal(err)
		}
		ys, err := mo.MulAll([][]float64{x, x, x, x})
		if err != nil {
			t.Fatal(err)
		}
		for v := range ys {
			for i := range ys[v] {
				if ys[v][i] != want[i] {
					t.Fatalf("threads=%d lane %d row %d: %x vs %x", threads, v, i, ys[v][i], want[i])
				}
			}
		}
	}

	if _, err := spmv.CompileSymmetricParallel(sym, 0); err == nil {
		t.Error("threads=0 accepted")
	}
	rect := spmv.NewMatrix(2, 3)
	if _, err := spmv.Symmetrize(rect); err == nil {
		t.Error("rectangular Symmetrize accepted")
	}
}

// TestSymmetricTrafficHalvesMatrixStream checks the traffic model: the
// symmetric operator's modeled matrix stream is roughly half the plain
// CSR32 operator's on the same matrix.
func TestSymmetricTrafficHalvesMatrixStream(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sym, err := spmv.Symmetrize(buildRandom(t, rng, 300, 300, 6000))
	if err != nil {
		t.Fatal(err)
	}
	sop, err := spmv.CompileSymmetricParallel(sym, 2)
	if err != nil {
		t.Fatal(err)
	}
	gop, err := spmv.Compile(sym, spmv.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sop.Traffic(spmv.TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := gop.Traffic(spmv.TrafficOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MatrixBytes <= 0 || float64(st.MatrixBytes) > 0.62*float64(gt.MatrixBytes) {
		t.Errorf("symmetric matrix stream %d B vs general %d B: not halved", st.MatrixBytes, gt.MatrixBytes)
	}
	if st.Flops != 2*sop.NNZ() {
		t.Errorf("flops %d, want %d", st.Flops, 2*sop.NNZ())
	}
}

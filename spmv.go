// Package spmv is the public API of this repository: a multicore-optimized
// sparse matrix-vector multiplication (SpMV) library reproducing
// "Optimization of Sparse Matrix-Vector Multiplication on Emerging
// Multicore Platforms" (Williams, Oliker, Vuduc, Shalf, Yelick, Demmel —
// SC 2007).
//
// The library implements the paper's full optimization stack:
//
//   - storage formats: CSR, register-blocked BCSR, block-coordinate BCOO,
//     each with 16- or 32-bit indices, composed under cache/TLB blocking;
//   - the §4.2 heuristic auto-tuner: one pass over the nonzeros choosing
//     the (format, tile shape, index width) per cache block that minimizes
//     the matrix footprint;
//   - code-optimized kernels: single-loop CSR, branchless/segmented CSR,
//     fully unrolled register-tile kernels for all nine power-of-two
//     shapes;
//   - parallelization: row decomposition balanced by nonzeros with one
//     goroutine per partition (disjoint destination ranges — no locks).
//
// A typical use:
//
//	a := spmv.NewMatrix(n, n)
//	a.Set(i, j, v) // ... for each nonzero
//	op, err := spmv.Compile(a, spmv.DefaultTuneOptions())
//	y := op.Mul(x)
//
// The cross-platform performance study (the paper's evaluation on AMD X2,
// Intel Clovertown, Sun Niagara and STI Cell) is reproduced by the
// cmd/spmv-bench and cmd/spmv-report tools backed by the platform model in
// internal/perf. An online serving layer (internal/server, cmd/spmv-serve)
// applies the multiple-vectors optimization to concurrent traffic and
// scales across nodes with a shard coordinator. See DESIGN.md for the
// architecture and EXPERIMENTS.md for reproducing the evaluation.
package spmv

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/partition"
	"repro/internal/traffic"
	"repro/internal/tune"
)

// Matrix is a sparse matrix under assembly, in coordinate form. Build it
// with NewMatrix/Set (or load it with ReadMatrixMarket), then Compile it
// into an Operator for repeated multiplication.
type Matrix struct {
	coo *matrix.COO
}

// NewMatrix creates an empty rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{coo: matrix.NewCOO(rows, cols)}
}

// Set appends entry (i, j) = v. Duplicate entries are summed at compile
// time (MatrixMarket semantics). It returns an error if (i, j) is out of
// range.
func (m *Matrix) Set(i, j int, v float64) error { return m.coo.Append(i, j, v) }

// Dims returns (rows, cols).
func (m *Matrix) Dims() (rows, cols int) { return m.coo.Dims() }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int64 { return m.coo.NNZ() }

// Entries calls f for every stored entry in insertion order. Duplicates
// appear as stored (they are summed only at compile time).
func (m *Matrix) Entries(f func(i, j int, v float64)) {
	for k := range m.coo.Val {
		f(int(m.coo.RowIdx[k]), int(m.coo.ColIdx[k]), m.coo.Val[k])
	}
}

// Stats returns structural statistics (dimensions, nnz/row, empty rows,
// bandwidth, symmetry) of the matrix.
func (m *Matrix) Stats() MatrixStats { return m.coo.ComputeStats() }

// IsSymmetric reports whether the matrix equals its transpose exactly
// (numerical symmetry, not just the structural symmetry Stats reports).
// It is the admission test for symmetry-requiring consumers — Conjugate
// Gradient sessions, CompileSymmetric — independent of which storage
// family ends up serving the matrix.
func (m *Matrix) IsSymmetric() bool { return matrix.IsNumericallySymmetric(m.coo) }

// MatrixStats re-exports the structural summary used by Table 3.
type MatrixStats = matrix.Stats

// Reordering is a symmetric row/column permutation produced by ReorderRCM.
// Multiply with the reordered operator by permuting inputs and
// un-permuting outputs:
//
//	y = ro.Unpermute(opReordered.Mul(ro.Permute(x)))
type Reordering struct {
	p *matrix.Permutation
}

// Permute maps a vector into the reordered index space.
func (r *Reordering) Permute(v []float64) []float64 { return r.p.PermuteVec(v) }

// Unpermute maps a vector back to the original index space.
func (r *Reordering) Unpermute(v []float64) []float64 { return r.p.UnpermuteVec(v) }

// ReorderRCM applies reverse Cuthill-McKee, the locality-enhancing
// reordering of §2.1's SPARSITY/OSKI technique list, to a square matrix:
// it returns B = P·A·Pᵀ with (heuristically) minimized bandwidth — which
// concentrates source-vector accesses and improves cache blocking — plus
// the permutation needed to translate vectors.
func ReorderRCM(m *Matrix) (*Matrix, *Reordering, error) {
	p, ok := matrix.RCM(m.coo)
	if !ok {
		return nil, nil, fmt.Errorf("spmv: RCM needs a square matrix")
	}
	return &Matrix{coo: p.ApplySymmetric(m.coo)}, &Reordering{p: p}, nil
}

// ReadMatrixMarket loads a matrix from MatrixMarket format (coordinate
// real/pattern general/symmetric, or array real general).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	coo, err := mmio.Read(r)
	if err != nil {
		return nil, err
	}
	return &Matrix{coo: coo}, nil
}

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate format.
func (m *Matrix) WriteMatrixMarket(w io.Writer) error {
	return mmio.Write(w, m.coo)
}

// GenerateSuite builds a synthetic structural twin of one of the paper's
// 14 evaluation matrices (Table 3) at the given scale. Valid names include
// "Dense", "Protein", "FEM/Cantilever", "QCD", "Economics", "webbase",
// "LP", ... — see SuiteNames.
func GenerateSuite(name string, scale float64, seed int64) (*Matrix, error) {
	coo, err := gen.GenerateByName(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return &Matrix{coo: coo}, nil
}

// SuiteNames lists the paper-order names accepted by GenerateSuite.
func SuiteNames() []string {
	names := make([]string, len(gen.Suite))
	for i, s := range gen.Suite {
		names[i] = s.Name
	}
	return names
}

// TuneOptions configures the auto-tuner; see internal/tune for the meaning
// of each field. DefaultTuneOptions enables the full §4.2 heuristic.
type TuneOptions = tune.Options

// DefaultTuneOptions enables register blocking, BCOO, 16-bit indices, and
// cache/TLB blocking with a 1MB budget.
func DefaultTuneOptions() TuneOptions { return tune.DefaultOptions() }

// NaiveOptions disables every data-structure optimization: the operator
// runs plain CSR with 32-bit indices (the paper's baseline).
func NaiveOptions() TuneOptions { return TuneOptions{} }

// Decision re-exports the tuner's per-cache-block decision record.
type Decision = tune.Decision

// Operator is a compiled, immutable SpMV operator: an encoded matrix bound
// to its optimized kernel.
type Operator struct {
	k          kernel.Kernel
	rows, cols int
	nnz        int64
	decisions  []Decision
	footprint  int64
	baseline   int64
	threads    int

	// src points at the source matrix's entries so the multi-RHS hooks
	// (Multi, RowPartition, Traffic fallback) can rebuild CSR storage on
	// first use. The CSR itself is NOT retained eagerly: callers that
	// never touch the hooks pay nothing beyond the tuned encoding. nil
	// for operators without a coordinate source (CompileSymmetric).
	src *matrix.COO

	// sym is the symmetric sweep kernel when this operator is backed by
	// upper-triangle storage (CompileSymmetric*); its multi-RHS hooks
	// route through it instead of rebuilding CSR.
	sym *kernel.SymSweep

	multiMu sync.Mutex
	lazyCSR *matrix.CSR32          // built on first hook use, then shared
	multi   map[int]*MultiOperator // CSR-backed multi-RHS views, by width
	wide    map[int]*MultiOperator // tuned-encoding multi-RHS views, by width
}

// csrLocked returns (building if needed) the CSR32 backing the multi-RHS
// hooks. multiMu must be held. The CSR snapshots the source matrix at
// first use; mutating the Matrix after Compile is not supported for these
// hooks (the compiled kernel would diverge from it anyway).
func (o *Operator) csrLocked() (*matrix.CSR32, error) {
	if o.lazyCSR != nil {
		return o.lazyCSR, nil
	}
	if o.src == nil {
		return nil, fmt.Errorf("spmv: operator has no CSR backing")
	}
	csr, err := matrix.NewCSR[uint32](o.src)
	if err != nil {
		return nil, err
	}
	o.lazyCSR = csr
	return csr, nil
}

// Compile tunes and compiles the matrix into a serial operator.
func Compile(m *Matrix, opt TuneOptions) (*Operator, error) {
	return compile(m, opt, 1, 1)
}

// CompileParallel tunes each thread's row block independently (balanced by
// nonzeros) and compiles a parallel operator with one goroutine per block.
// numaNodes tags blocks for NUMA placement accounting (use 1 if unsure).
func CompileParallel(m *Matrix, opt TuneOptions, threads, numaNodes int) (*Operator, error) {
	if threads < 1 {
		return nil, fmt.Errorf("spmv: threads must be >= 1, got %d", threads)
	}
	return compile(m, opt, threads, numaNodes)
}

func compile(m *Matrix, opt TuneOptions, threads, numaNodes int) (*Operator, error) {
	csr, err := matrix.NewCSR[uint32](m.coo)
	if err != nil {
		return nil, err
	}
	op := &Operator{
		rows: csr.R, cols: csr.C, nnz: csr.NNZ(),
		baseline: csr.FootprintBytes(),
		threads:  threads,
		src:      m.coo,
	}
	if threads == 1 {
		res, err := tune.Tune(csr, opt)
		if err != nil {
			return nil, err
		}
		k, err := kernel.Compile(res.Enc)
		if err != nil {
			return nil, err
		}
		op.k = k
		op.decisions = res.Decisions
		op.footprint = res.TotalFootprint
		return op, nil
	}
	pk, results, err := tune.TuneParallel(csr, opt, threads, numaNodes)
	if err != nil {
		return nil, err
	}
	op.k = pk
	for _, r := range results {
		op.decisions = append(op.decisions, r.Decisions...)
		op.footprint += r.TotalFootprint
	}
	return op, nil
}

// MulAdd computes y ← y + A·x.
func (o *Operator) MulAdd(y, x []float64) error { return o.k.MulAdd(y, x) }

// Mul returns A·x as a fresh vector.
func (o *Operator) Mul(x []float64) ([]float64, error) {
	y := make([]float64, o.rows)
	if err := o.k.MulAdd(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// Dims returns (rows, cols).
func (o *Operator) Dims() (rows, cols int) { return o.rows, o.cols }

// NNZ returns the number of logical nonzeros.
func (o *Operator) NNZ() int64 { return o.nnz }

// Threads returns the parallel width of the compiled kernel.
func (o *Operator) Threads() int { return o.threads }

// KernelName identifies the compiled kernel variant.
func (o *Operator) KernelName() string { return o.k.Name() }

// FootprintBytes returns the tuned data-structure size.
func (o *Operator) FootprintBytes() int64 { return o.footprint }

// BaselineBytes returns the plain CSR32 footprint for comparison.
func (o *Operator) BaselineBytes() int64 { return o.baseline }

// Savings returns the footprint reduction versus CSR32, in [0, 1).
func (o *Operator) Savings() float64 {
	if o.baseline == 0 {
		return 0
	}
	s := 1 - float64(o.footprint)/float64(o.baseline)
	if s < 0 {
		return 0
	}
	return s
}

// Decisions returns the tuner's per-cache-block decision log.
func (o *Operator) Decisions() []Decision { return o.decisions }

// Multi returns a width-k multi-RHS view of the operator: one call
// multiplies k vectors while streaming the matrix once (§2.1's
// multiple-vectors optimization). The backing CSR is built on first hook
// use and views are cached per width, so a serving layer can request the
// same width repeatedly at zero cost. Multi is safe for concurrent use,
// as are the returned views. Symmetric operators return a view over the
// parallel symmetric sweep, keeping the halved matrix stream.
func (o *Operator) Multi(width int) (*MultiOperator, error) {
	if width < 1 {
		return nil, fmt.Errorf("spmv: need at least 1 vector, got %d", width)
	}
	o.multiMu.Lock()
	defer o.multiMu.Unlock()
	if mo, ok := o.multi[width]; ok {
		return mo, nil
	}
	var mo *MultiOperator
	if o.sym != nil {
		mo = &MultiOperator{sym: o.sym, nv: width, rows: o.rows, cols: o.cols}
	} else {
		csr, err := o.csrLocked()
		if err != nil {
			return nil, err
		}
		mv, err := kernel.NewMultiVec(csr, width)
		if err != nil {
			return nil, err
		}
		mo = &MultiOperator{mv: mv, nv: width, rows: o.rows, cols: o.cols}
	}
	if o.multi == nil {
		o.multi = make(map[int]*MultiOperator)
	}
	o.multi[width] = mo
	return mo, nil
}

// WideMulti returns a width-k multi-RHS view that streams the operator's
// tuned encoding itself — register blocks, cache blocks, reduced indices
// and all — instead of the plain CSR fallback Multi's views stream. It
// combines the paper's two biggest bandwidth reductions (data-structure
// compression, §4.2, and multiple vectors, §2.1) in one sweep: the fused
// matrix stream shrinks by the tuner's footprint saving.
//
// Bits: each lane of a wide view accumulates in the encoding's own order,
// so lane results match the operator's single-vector MulAdd (per tuned
// block), not necessarily Multi's CSR bits. Wide views over plain CSR
// encodings (any index width, serial or row-partitioned) reproduce
// Multi's bits exactly — the property the serving layer's re-tuner relies
// on to promote a compacted encoding without changing responses. Views
// are cached per width and safe for concurrent use.
func (o *Operator) WideMulti(width int) (*MultiOperator, error) {
	if width < 1 {
		return nil, fmt.Errorf("spmv: need at least 1 vector, got %d", width)
	}
	o.multiMu.Lock()
	defer o.multiMu.Unlock()
	if mo, ok := o.wide[width]; ok {
		return mo, nil
	}
	var mo *MultiOperator
	if o.sym != nil {
		mo = &MultiOperator{sym: o.sym, nv: width, rows: o.rows, cols: o.cols}
	} else if p, ok := o.k.(*kernel.Parallel); ok {
		wp, err := kernel.NewWideParallel(p, width)
		if err != nil {
			return nil, err
		}
		mo = &MultiOperator{w: wp, nv: width, rows: o.rows, cols: o.cols}
	} else {
		wk, err := kernel.NewWide(o.k.Format(), width)
		if err != nil {
			return nil, err
		}
		mo = &MultiOperator{w: wk, nv: width, rows: o.rows, cols: o.cols}
	}
	if o.wide == nil {
		o.wide = make(map[int]*MultiOperator)
	}
	o.wide[width] = mo
	return mo, nil
}

// Retune re-runs the tuner on the operator's retained source matrix with
// new options, returning a fresh operator with the same thread count. The
// receiver is untouched (operators are immutable); callers swap the new
// operator in when they like what they got — the online re-tuning hook the
// serving layer builds on when the observed workload drifts from what the
// operator was tuned for.
func (o *Operator) Retune(opt TuneOptions) (*Operator, error) {
	if o.src == nil {
		return nil, fmt.Errorf("spmv: operator retains no source matrix to re-tune")
	}
	return compile(&Matrix{coo: o.src}, opt, o.threads, 1)
}

// Symmetric reports whether the operator is backed by upper-triangle
// (SymCSR) storage.
func (o *Operator) Symmetric() bool { return o.sym != nil }

// RowRange is a half-open row interval [Lo, Hi) with its nonzero count,
// produced by RowPartition for shard planning.
type RowRange struct {
	Lo, Hi int
	NNZ    int64
}

// RowPartition splits the operator's rows into n contiguous ranges
// balanced by nonzeros (the paper's §4.3 static load balancing). Disjoint
// ranges own disjoint destination rows, so shards of one sweep — serial or
// multi-RHS via MulAddRows — can run concurrently with no locking.
func (o *Operator) RowPartition(n int) ([]RowRange, error) {
	o.multiMu.Lock()
	csr, err := o.csrLocked()
	o.multiMu.Unlock()
	if err != nil {
		return nil, err
	}
	p, err := partition.ByNNZ(csr.RowPtr, n)
	if err != nil {
		return nil, err
	}
	out := make([]RowRange, len(p.Ranges))
	for i, r := range p.Ranges {
		out[i] = RowRange{Lo: r.Lo, Hi: r.Hi, NNZ: r.NNZ}
	}
	return out, nil
}

// TrafficOptions configures the DRAM-traffic model of internal/traffic.
type TrafficOptions = traffic.Options

// TrafficSummary is the modeled DRAM traffic and operation counts of one
// sweep; its MultiRHS method scales it to a fused k-vector sweep.
type TrafficSummary = traffic.Summary

// Traffic models the DRAM traffic of one y ← A·x sweep over the compiled
// encoding (§5.1's flop:byte analysis, made executable). Parallel
// composites fall back to the retained CSR stream, which is also what
// multi-RHS sweeps stream.
func (o *Operator) Traffic(opt TrafficOptions) (TrafficSummary, error) {
	s, err := traffic.Analyze(o.k.Format(), opt)
	if err != nil && o.src != nil {
		o.multiMu.Lock()
		csr, cerr := o.csrLocked()
		o.multiMu.Unlock()
		if cerr != nil {
			return TrafficSummary{}, cerr
		}
		return traffic.Analyze(csr, opt)
	}
	return s, err
}

// MultiTraffic models the DRAM traffic of one sweep through Multi's
// CSR-backed fused views — the retained CSR stream, whatever the tuner
// chose for the single-vector kernel. A serving layer that fuses requests
// over the CSR fallback accounts its sweeps with this, not with the tuned
// encoding Traffic reports for serial operators.
func (o *Operator) MultiTraffic(opt TrafficOptions) (TrafficSummary, error) {
	o.multiMu.Lock()
	csr, err := o.csrLocked()
	o.multiMu.Unlock()
	if err != nil {
		return TrafficSummary{}, err
	}
	return traffic.Analyze(csr, opt)
}

// WideTraffic models the DRAM traffic of one fused sweep through the
// tuned wide views (WideMulti): the tuned encodings themselves stream —
// summed across the thread parts of a parallel operator — rather than the
// retained-CSR fallback Traffic reports for parallel composites. It is the
// single-RHS basis; scale with TrafficSummary.MultiRHS or score a request
// mix with BlendedPerRequest.
func (o *Operator) WideTraffic(opt TrafficOptions) (TrafficSummary, error) {
	if p, ok := o.k.(*kernel.Parallel); ok && o.sym == nil {
		var total traffic.Summary
		for _, part := range p.Parts() {
			s, err := traffic.Analyze(part.Enc, opt)
			if err != nil {
				return TrafficSummary{}, err
			}
			total.Add(s)
		}
		// The parts of one fused sweep share the broadcast source block, so
		// x's compulsory traffic is the whole-matrix gather, not the
		// per-part sum (which would charge the shared columns once per
		// part). The retained CSR gives the union of touched columns.
		o.multiMu.Lock()
		csr, err := o.csrLocked()
		o.multiMu.Unlock()
		if err == nil {
			if whole, werr := traffic.Analyze(csr, opt); werr == nil {
				total.SourceBytes = whole.SourceBytes
			}
		}
		return total, nil
	}
	return traffic.Analyze(o.k.Format(), opt)
}

// CompileSymmetric compiles a numerically symmetric matrix into a serial
// operator backed by upper-triangle (SymCSR) storage, halving the matrix
// stream — the symmetry optimization the paper's conclusions recommend for
// bandwidth reduction (§7) and that OSKI implements. Returns an error if
// the matrix is not exactly symmetric. Equivalent to
// CompileSymmetricParallel(m, 1), and bitwise identical to it at every
// thread count: the kernel's reduction order is canonical (see
// kernel.SymSweep), so threads change wall-clock, never bits.
func CompileSymmetric(m *Matrix) (*Operator, error) {
	return CompileSymmetricParallel(m, 1)
}

// CompileSymmetricParallel compiles a numerically symmetric matrix into a
// parallel operator over upper-triangle storage. The symmetric scatter
// y[j] += a_ij·x[i] races under plain row partitioning, so the kernel runs
// the pOSKI-style two-phase scheme: per-segment scan with private spill
// buffers, then a deterministic ordered reduction. Results are bitwise
// identical across thread counts and multi-RHS widths.
func CompileSymmetricParallel(m *Matrix, threads int) (*Operator, error) {
	if threads < 1 {
		return nil, fmt.Errorf("spmv: threads must be >= 1, got %d", threads)
	}
	sym, err := matrix.NewSymCSR(m.coo)
	if err != nil {
		return nil, err
	}
	csrBaseline, err := matrix.NewCSR[uint32](m.coo)
	if err != nil {
		return nil, err
	}
	sw, err := kernel.NewSymSweep(sym, threads)
	if err != nil {
		return nil, err
	}
	return &Operator{
		k:    sw,
		sym:  sw,
		rows: sym.N, cols: sym.N,
		nnz:       sym.NNZ(),
		footprint: sym.FootprintBytes(),
		baseline:  csrBaseline.FootprintBytes(),
		threads:   threads,
		decisions: []Decision{{
			Rows: sym.N, Cols: sym.N, NNZ: sym.NNZ(),
			Format: "SymCSR", IndexBits: 32,
			Footprint: sym.FootprintBytes(),
			Fill:      float64(sym.Stored()) / float64(max(sym.NNZ(), 1)),
		}},
	}, nil
}

// Symmetrize returns the symmetric part (A + Aᵀ)/2 of a square matrix —
// the standard preconditioner-style symmetrization, useful for feeding
// CompileSymmetric with matrices whose structure is symmetric but whose
// values drifted (or were never symmetric to begin with). Duplicate
// entries are summed before halving, so the result is exactly symmetric:
// NewSymCSR always accepts it.
func Symmetrize(m *Matrix) (*Matrix, error) {
	rows, cols := m.Dims()
	if rows != cols {
		return nil, fmt.Errorf("spmv: Symmetrize needs a square matrix, got %dx%d", rows, cols)
	}
	csr, err := matrix.NewCSR[uint32](m.coo) // canonical: sorted, duplicates summed
	if err != nil {
		return nil, err
	}
	out := NewMatrix(rows, rows)
	for i := 0; i < csr.R; i++ {
		for k := csr.RowPtr[i]; k < csr.RowPtr[i+1]; k++ {
			j := int(csr.Col[k])
			v := csr.Val[k]
			if i == j {
				_ = out.Set(i, i, v)
			} else {
				_ = out.Set(i, j, v/2)
				_ = out.Set(j, i, v/2)
			}
		}
	}
	return out, nil
}

// MultiOperator multiplies a block of k vectors in one matrix sweep — the
// multiple-vectors optimization (OSKI, §2.1), which raises the effective
// flop:byte ratio by nearly k for bandwidth-bound SpMV. It is backed by
// either the CSR block kernel or, for symmetric operators, the parallel
// symmetric sweep (which streams the halved upper-triangle store once for
// all k vectors).
type MultiOperator struct {
	mv         *kernel.MultiVec // CSR-backed views
	sym        *kernel.SymSweep // symmetric-operator views
	w          kernel.Wide      // tuned-encoding views (WideMulti)
	nv         int
	rows, cols int
}

// CompileMulti builds a k-vector operator over CSR storage.
func CompileMulti(m *Matrix, vectors int) (*MultiOperator, error) {
	csr, err := matrix.NewCSR[uint32](m.coo)
	if err != nil {
		return nil, err
	}
	mv, err := kernel.NewMultiVec(csr, vectors)
	if err != nil {
		return nil, err
	}
	return &MultiOperator{mv: mv, nv: vectors, rows: csr.R, cols: csr.C}, nil
}

// Vectors returns the block width k.
func (o *MultiOperator) Vectors() int { return o.nv }

// MulAll computes Y_v = A·X_v for all k vectors in one sweep.
func (o *MultiOperator) MulAll(xs [][]float64) ([][]float64, error) {
	if len(xs) != o.nv {
		return nil, fmt.Errorf("spmv: %d vectors, operator compiled for %d", len(xs), o.nv)
	}
	xBlock, err := kernel.Interleave(xs)
	if err != nil {
		return nil, err
	}
	yBlock := make([]float64, o.rows*o.nv)
	if err := o.MulAddBlock(yBlock, xBlock); err != nil {
		return nil, err
	}
	return kernel.Deinterleave(yBlock, o.nv)
}

// Dims returns (rows, cols).
func (o *MultiOperator) Dims() (rows, cols int) { return o.rows, o.cols }

// MulAddBlock computes Y ← Y + A·X over interleaved blocks (X[j*k+v] is
// element j of vector v; see Interleave). Callers that keep vectors in
// block layout avoid the pack/unpack of MulAll.
func (o *MultiOperator) MulAddBlock(yBlock, xBlock []float64) error {
	if o.sym != nil {
		return o.sym.MulAddWidth(yBlock, xBlock, o.nv)
	}
	if o.w != nil {
		return o.w.MulAddBlock(yBlock, xBlock)
	}
	return o.mv.MulAdd(yBlock, xBlock)
}

// MulAddBlockExec is MulAddBlock with the view's internal parallel task
// sets scheduled through run (which must execute every task and return
// once all complete — e.g. a serving worker pool). Scheduling never
// changes result bits. Only symmetric views parallelize internally;
// CSR-backed views have no internal tasks and run the plain sweep.
func (o *MultiOperator) MulAddBlockExec(yBlock, xBlock []float64, run func(tasks []func())) error {
	if o.sym != nil {
		return o.sym.MulAddWidthExec(yBlock, xBlock, o.nv, kernel.Exec(run))
	}
	if o.w != nil {
		if wp, ok := o.w.(*kernel.WideParallel); ok {
			return wp.MulAddBlockExec(yBlock, xBlock, kernel.Exec(run))
		}
		// Serial wide kernels have one internal task: the sweep itself.
		// Routing it through run keeps it under the executor's bounds.
		var err error
		run([]func(){func() { err = o.w.MulAddBlock(yBlock, xBlock) }})
		return err
	}
	return o.mv.MulAdd(yBlock, xBlock)
}

// MulAddRows computes rows [lo, hi) of Y ← Y + A·X over interleaved
// blocks. Disjoint row ranges write disjoint regions of yBlock, so the
// shards of one fused sweep (see Operator.RowPartition) run concurrently
// without synchronization. Symmetric views reject it: the symmetric
// scatter writes outside [lo, hi), so a symmetric sweep cannot be
// row-sharded externally — use MulAddBlock, which parallelizes
// internally with a deterministic reduction.
func (o *MultiOperator) MulAddRows(yBlock, xBlock []float64, lo, hi int) error {
	if o.sym != nil {
		return fmt.Errorf("spmv: symmetric multi-RHS sweeps cannot be row-sharded externally; use MulAddBlock")
	}
	if o.w != nil {
		return fmt.Errorf("spmv: tuned wide sweeps parallelize internally and cannot be row-sharded externally; use MulAddBlock")
	}
	return o.mv.MulAddRows(yBlock, xBlock, lo, hi)
}

// Interleave packs k equal-length column vectors into the row-major block
// layout the multi-RHS kernels consume.
func Interleave(xs [][]float64) ([]float64, error) { return kernel.Interleave(xs) }

// Deinterleave unpacks a block produced by the multi-RHS kernels back into
// k column vectors.
func Deinterleave(block []float64, k int) ([][]float64, error) {
	return kernel.Deinterleave(block, k)
}

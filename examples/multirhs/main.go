// Multiple right-hand sides: time k independent SpMVs against one k-vector
// sweep (spmv.CompileMulti), demonstrating the multiple-vectors bandwidth
// amortization the paper's related work (OSKI/SPARSITY) implements and its
// conclusions recommend — the matrix is streamed once instead of k times.
// Also shows symmetric storage (spmv.CompileSymmetricParallel) halving the
// stream and composing with the fused k-vector sweep.
//
//	go run ./examples/multirhs [-scale 0.03] [-k 4] [-reps 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	spmv "repro"
)

func main() {
	scale := flag.Float64("scale", 0.03, "FEM/Cantilever twin scale")
	k := flag.Int("k", 4, "number of right-hand sides")
	reps := flag.Int("reps", 20, "timing repetitions")
	flag.Parse()

	m, err := spmv.GenerateSuite("FEM/Cantilever", *scale, 13)
	if err != nil {
		log.Fatal(err)
	}
	st := m.Stats()
	fmt.Printf("matrix    : FEM/Cantilever twin, %d x %d, %d nnz\n", st.Rows, st.Cols, st.NNZ)

	single, err := spmv.Compile(m, spmv.NaiveOptions())
	if err != nil {
		log.Fatal(err)
	}
	multi, err := spmv.CompileMulti(m, *k)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, *k)
	for v := range xs {
		xs[v] = make([]float64, st.Cols)
		for i := range xs[v] {
			xs[v][i] = rng.NormFloat64()
		}
	}

	// k separate products.
	tSingle := time.Now()
	var wantLast []float64
	for r := 0; r < *reps; r++ {
		for v := range xs {
			y, err := single.Mul(xs[v])
			if err != nil {
				log.Fatal(err)
			}
			wantLast = y
		}
	}
	dSingle := time.Since(tSingle)

	// One k-wide sweep.
	tMulti := time.Now()
	var gotAll [][]float64
	for r := 0; r < *reps; r++ {
		gotAll, err = multi.MulAll(xs)
		if err != nil {
			log.Fatal(err)
		}
	}
	dMulti := time.Since(tMulti)

	// Verify the last vector agrees.
	for i := range wantLast {
		if math.Abs(gotAll[*k-1][i]-wantLast[i]) > 1e-9 {
			log.Fatalf("multi-vector result differs at row %d", i)
		}
	}
	flops := float64(2*st.NNZ) * float64(*k) * float64(*reps)
	fmt.Printf("separate  : %8.2fms  (%.2f Gflop/s)\n",
		dSingle.Seconds()*1e3, flops/dSingle.Seconds()/1e9)
	fmt.Printf("k-vector  : %8.2fms  (%.2f Gflop/s)  speedup %.2fx with k=%d\n",
		dMulti.Seconds()*1e3, flops/dMulti.Seconds()/1e9,
		dSingle.Seconds()/dMulti.Seconds(), *k)

	// Symmetric storage on the symmetric part (A + Aᵀ)/2: half the matrix
	// stream, served by the parallel scatter/reduce kernel, and fused with
	// the multiple-vectors optimization through Operator.Multi.
	sym, err := spmv.Symmetrize(m)
	if err != nil {
		log.Fatal(err)
	}
	symOp, err := spmv.CompileSymmetricParallel(sym, 4)
	if err != nil {
		log.Fatal(err)
	}
	fullOp, err := spmv.Compile(sym, spmv.NaiveOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symmetry  : full CSR %d B vs SymCSR %d B (%.1f%% of the stream, %d threads)\n",
		fullOp.FootprintBytes(), symOp.FootprintBytes(),
		100*float64(symOp.FootprintBytes())/float64(fullOp.FootprintBytes()),
		symOp.Threads())

	symMulti, err := symOp.Multi(*k)
	if err != nil {
		log.Fatal(err)
	}
	tSym := time.Now()
	var symAll [][]float64
	for r := 0; r < *reps; r++ {
		symAll, err = symMulti.MulAll(xs)
		if err != nil {
			log.Fatal(err)
		}
	}
	dSym := time.Since(tSym)
	ref, err := fullOp.Mul(xs[*k-1])
	if err != nil {
		log.Fatal(err)
	}
	for i := range ref {
		if math.Abs(symAll[*k-1][i]-ref[i]) > 1e-9 {
			log.Fatalf("symmetric multi-RHS result differs at row %d", i)
		}
	}
	fmt.Printf("sym k-vec : %8.2fms  (%.2f Gflop/s)  halved stream + fused sweep\n",
		dSym.Seconds()*1e3, flops/dSym.Seconds()/1e9)
}

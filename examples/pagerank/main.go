// PageRank by power iteration over the webbase twin — the paper's
// "connectivity graph collected from a web crawl" workload, and the
// archetype of the short-row, irregular matrices (§5.1) that stress loop
// overhead rather than bandwidth.
//
//	go run ./examples/pagerank [-scale 0.02] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	spmv "repro"
)

func main() {
	scale := flag.Float64("scale", 0.02, "webbase twin scale (1.0 = 1M pages)")
	threads := flag.Int("threads", 4, "parallel width")
	damping := flag.Float64("damping", 0.85, "PageRank damping factor")
	tol := flag.Float64("tol", 1e-9, "L1 convergence tolerance")
	flag.Parse()

	// The webbase twin is a row-wise adjacency matrix: entry (i,j) means
	// page i links to page j. PageRank iterates x' = d·P·x + teleport, so
	// we build the column-stochastic transition matrix P directly:
	// P[j][i] = 1/outdeg(i) for each link i→j.
	web, err := spmv.GenerateSuite("webbase", *scale, 11)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := web.Dims()
	st := web.Stats()
	fmt.Printf("graph     : %d pages, %d links, %.1f links/page, %d dangling+unlinked rows\n",
		n, st.NNZ, st.NNZPerRow, st.EmptyRows)

	outdeg := make([]int, n)
	web.Entries(func(i, j int, v float64) { outdeg[i]++ })
	p := spmv.NewMatrix(n, n)
	web.Entries(func(i, j int, v float64) {
		if err := p.Set(j, i, 1/float64(outdeg[i])); err != nil {
			log.Fatal(err)
		}
	})

	op, err := spmv.CompileParallel(p, spmv.DefaultTuneOptions(), *threads, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operator  : %s, %.2f bytes/link (%.1f%% below CSR32)\n",
		op.KernelName(), float64(op.FootprintBytes())/float64(op.NNZ()), 100*op.Savings())

	// Power iteration with dangling-mass redistribution.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	var iters int
	for iters = 1; iters <= 200; iters++ {
		for i := range next {
			next[i] = 0
		}
		if err := op.MulAdd(next, x); err != nil {
			log.Fatal(err)
		}
		// Dangling pages (out-degree 0) spread their mass uniformly.
		var dangling float64
		for i := range x {
			if outdeg[i] == 0 {
				dangling += x[i]
			}
		}
		base := (1-*damping)/float64(n) + *damping*dangling/float64(n)
		var delta float64
		for i := range next {
			v := *damping*next[i] + base
			delta += math.Abs(v - x[i])
			next[i] = v
		}
		x, next = next, x
		if delta < *tol {
			break
		}
	}

	type ranked struct {
		page int
		pr   float64
	}
	top := make([]ranked, n)
	var mass float64
	for i := range x {
		top[i] = ranked{i, x[i]}
		mass += x[i]
	}
	sort.Slice(top, func(a, b int) bool { return top[a].pr > top[b].pr })
	fmt.Printf("pagerank  : converged in %d iterations, total mass %.6f (want ~1)\n",
		iters, mass)
	fmt.Println("top pages :")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  #%d page %-8d pr=%.3e (out-degree %d)\n",
			i+1, top[i].page, top[i].pr, outdeg[top[i].page])
	}
}

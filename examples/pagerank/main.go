// PageRank by power iteration over the webbase twin — the paper's
// "connectivity graph collected from a web crawl" workload, and the
// archetype of the short-row, irregular matrices (§5.1) that stress loop
// overhead rather than bandwidth.
//
// With -evolve N the example keeps going after the first convergence:
// it registers the transition matrix with the serving layer, adds N new
// links through PATCH /v1/matrices/{id} (each new link rescales its
// source page's whole out-column), reruns PageRank over the live delta
// overlay, and verifies the ranks are BITWISE identical to a
// from-scratch rebuild of the mutated graph — before and after folding
// the deltas back into the base with a recompaction.
//
//	go run ./examples/pagerank [-scale 0.02] [-threads 4] [-evolve 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"slices"
	"sort"

	spmv "repro"
	"repro/internal/server"
)

// pagerank runs power iteration with dangling-mass redistribution until
// the L1 step falls under tol. mul must return a fresh y = P·x each
// call (both spmv.Operator.MulAdd and server.Server.Mul qualify).
func pagerank(n int, outdeg []int, damping, tol float64, mul func([]float64) ([]float64, error)) ([]float64, int, error) {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	var iters int
	for iters = 1; iters <= 200; iters++ {
		y, err := mul(x)
		if err != nil {
			return nil, 0, err
		}
		// Dangling pages (out-degree 0) spread their mass uniformly.
		var dangling float64
		for i := range x {
			if outdeg[i] == 0 {
				dangling += x[i]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		var step float64
		for i := range y {
			v := damping*y[i] + base
			step += math.Abs(v - x[i])
			y[i] = v
		}
		x = y
		if step < tol {
			break
		}
	}
	return x, iters, nil
}

func main() {
	scale := flag.Float64("scale", 0.02, "webbase twin scale (1.0 = 1M pages)")
	threads := flag.Int("threads", 4, "parallel width")
	damping := flag.Float64("damping", 0.85, "PageRank damping factor")
	tol := flag.Float64("tol", 1e-9, "L1 convergence tolerance")
	evolve := flag.Int("evolve", 0, "after converging, add this many links via PATCH and re-rank over the delta overlay")
	flag.Parse()

	// The webbase twin is a row-wise adjacency matrix: entry (i,j) means
	// page i links to page j. PageRank iterates x' = d·P·x + teleport, so
	// we build the column-stochastic transition matrix P directly:
	// P[j][i] = 1/outdeg(i) for each link i→j.
	web, err := spmv.GenerateSuite("webbase", *scale, 11)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := web.Dims()
	st := web.Stats()
	fmt.Printf("graph     : %d pages, %d links, %.1f links/page, %d dangling+unlinked rows\n",
		n, st.NNZ, st.NNZPerRow, st.EmptyRows)

	targets := make([][]int, n)
	web.Entries(func(i, j int, v float64) { targets[i] = append(targets[i], j) })
	// The crawl twin can report the same link twice; PageRank treats the
	// graph as simple, so collapse duplicates before normalizing columns
	// (a duplicate would otherwise double-weight its edge — and break the
	// -evolve bitwise check, since a "set" delta replaces the summed
	// value while a rebuild re-sums it).
	for i, ts := range targets {
		sort.Ints(ts)
		targets[i] = slices.Compact(ts)
	}
	outdeg := make([]int, n)
	transition := func() *spmv.Matrix {
		p := spmv.NewMatrix(n, n)
		for i, ts := range targets {
			outdeg[i] = len(ts)
			for _, j := range ts {
				if err := p.Set(j, i, 1/float64(len(ts))); err != nil {
					log.Fatal(err)
				}
			}
		}
		return p
	}
	p := transition()

	op, err := spmv.CompileParallel(p, spmv.DefaultTuneOptions(), *threads, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operator  : %s, %.2f bytes/link (%.1f%% below CSR32)\n",
		op.KernelName(), float64(op.FootprintBytes())/float64(op.NNZ()), 100*op.Savings())

	x, iters, err := pagerank(n, outdeg, *damping, *tol, func(x []float64) ([]float64, error) {
		y := make([]float64, n)
		return y, op.MulAdd(y, x)
	})
	if err != nil {
		log.Fatal(err)
	}

	type ranked struct {
		page int
		pr   float64
	}
	top := make([]ranked, n)
	var mass float64
	for i := range x {
		top[i] = ranked{i, x[i]}
		mass += x[i]
	}
	sort.Slice(top, func(a, b int) bool { return top[a].pr > top[b].pr })
	fmt.Printf("pagerank  : converged in %d iterations, total mass %.6f (want ~1)\n",
		iters, mass)
	fmt.Println("top pages :")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  #%d page %-8d pr=%.3e (out-degree %d)\n",
			i+1, top[i].page, top[i].pr, outdeg[top[i].page])
	}

	if *evolve > 0 {
		evolveAndVerify(n, targets, outdeg, transition, *evolve, *threads, *damping, *tol)
	}
}

// evolveAndVerify grows the crawl by newLinks random links, served three
// ways — live delta overlay, from-scratch rebuild, and recompacted base —
// and insists all three converge to bitwise-identical ranks.
func evolveAndVerify(n int, targets [][]int, outdeg []int, transition func() *spmv.Matrix, newLinks, threads int, damping, tol float64) {
	cfg := server.DefaultConfig()
	cfg.Threads = threads
	cfg.RecompactThreshold = -1 // fold only when we say so, to rank over the live overlay first
	s := server.New(cfg)
	defer s.Close()
	if _, err := s.Register("pagerank", "webbase-P", transition()); err != nil {
		log.Fatal(err)
	}

	// A new link i→j rescales every entry of P's column i to
	// 1/(outdeg+1) and adds the (j, i) entry — one "set" per out-link.
	rng := rand.New(rand.NewSource(23))
	var deltas []server.Delta
	for added := 0; added < newLinks; {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		exists := false
		for _, k := range targets[i] {
			if k == j {
				exists = true
				break
			}
		}
		if exists {
			continue
		}
		targets[i] = append(targets[i], j)
		outdeg[i]++
		for _, k := range targets[i] {
			deltas = append(deltas, server.Delta{Op: "set", Row: int32(k), Col: int32(i), Val: 1 / float64(outdeg[i])})
		}
		added++
	}
	res, err := s.Patch("pagerank", deltas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolve    : +%d links → %d deltas (seq %d, %d dirty rows, overlay %d B/sweep vs matrix %d B)\n",
		newLinks, res.Applied, res.Seq, res.DirtyRows, res.OverlayBytes, res.MatrixBytes)

	serverRank := func(sv *server.Server, id string) []float64 {
		ranks, iters, err := pagerank(n, outdeg, damping, tol, func(x []float64) ([]float64, error) {
			return sv.Mul(id, x)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("            converged in %d iterations\n", iters)
		return ranks
	}
	mustMatch := func(what string, got, want []float64) {
		for i := range got {
			if got[i] != want[i] {
				log.Fatalf("%s: ranks diverged at page %d: %x vs %x", what, i, got[i], want[i])
			}
		}
		fmt.Printf("            ✓ %s\n", what)
	}

	fmt.Println("overlay   : re-ranking over the live delta overlay")
	live := serverRank(s, "pagerank")

	fmt.Println("rebuild   : re-ranking a from-scratch rebuild of the mutated graph")
	s2 := server.New(cfg)
	defer s2.Close()
	if _, err := s2.Register("pagerank", "webbase-P", transition()); err != nil {
		log.Fatal(err)
	}
	rebuilt := serverRank(s2, "pagerank")
	mustMatch("overlay ranks bitwise-match the rebuild", live, rebuilt)

	fmt.Println("recompact : folding the delta log into a fresh tuned base")
	if err := s.Recompact("pagerank"); err != nil {
		log.Fatal(err)
	}
	folded := serverRank(s, "pagerank")
	mustMatch("post-recompaction ranks bitwise-match the rebuild", folded, rebuilt)
	stats := s.Stats()
	fmt.Printf("            (%d patch batches, %d deltas, %d recompactions)\n",
		stats.Patches, stats.DeltasApplied, stats.Recompactions)
}

// slo-loadgen demonstrates what SLO-aware scheduling buys under
// saturation: a mixed workload — open-loop latency-class clients (fixed
// arrival rate, the interactive tier) against closed-loop bulk-class
// clients (as fast as the server lets them, the batch tier) — is run
// twice on a deliberately narrow server (one sweep slot), once with the
// scheduler off (FIFO batch formation) and once with it on (strict
// class priority + shortest-job-first + aging).
//
// With FIFO, bulk requests queue ahead of interactive ones and the
// latency-class p99 inflates to the full queue depth. With the
// scheduler, latency-class requests jump the queue, while the aging
// escalator keeps bulk progressing — the run reports per-class p50/p99,
// bulk throughput (which must stay within a few percent of FIFO: the
// slot is busy either way, scheduling only reorders), the Jain fairness
// index over tenants, and admission rejections.
//
//	go run ./examples/slo-loadgen [-suite LP] [-scale 0.05] [-duration 5s]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/server"
)

type result struct {
	latP50, latP99   float64 // latency-class µs
	bulkP50, bulkP99 float64 // bulk-class µs
	latServed        int64
	bulkServed       int64
	jain             float64
	rejected         uint64
}

func run(name string, sc sched.Config, suite string, scale float64, duration time.Duration, latClients, bulkClients int, latRate float64) result {
	cfg := server.DefaultConfig()
	// One sweep slot and no fusion: a narrow server saturates under the
	// bulk load, so queueing policy is the whole story.
	cfg.Workers = 1
	cfg.MaxConcurrentSweeps = 1
	cfg.MaxBatch = 1
	cfg.Sched = sc
	s := server.New(cfg)
	defer s.Close()
	api := s.API()

	info, err := api.RegisterSuite("m", suite, scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	mkVec := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, info.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		return x
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var latServed, bulkServed atomic.Int64

	// Closed-loop bulk tier: each client issues the next request the
	// moment the previous one returns.
	for g := 0; g < bulkClients; g++ {
		wg.Add(1)
		x := mkVec(int64(1000 + g))
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := api.MulOpts("m", x, server.MulOptions{Tenant: "batch", Class: "bulk"}); err == nil {
					bulkServed.Add(1)
				}
			}
		}()
	}
	// Open-loop latency tier: fixed arrival rate regardless of backlog,
	// the way interactive traffic actually arrives.
	interval := time.Duration(float64(time.Second) / latRate)
	for g := 0; g < latClients; g++ {
		wg.Add(1)
		x := mkVec(int64(g))
		go func() {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if _, err := api.MulOpts("m", x, server.MulOptions{Tenant: "interactive", Class: "latency"}); err == nil {
						latServed.Add(1)
					}
				}
			}
		}()
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	rep, err := api.StatsReport()
	if err != nil {
		log.Fatal(err)
	}
	r := result{latServed: latServed.Load(), bulkServed: bulkServed.Load()}
	if rep.Latency != nil {
		if h, ok := rep.Latency.Class["latency"]; ok {
			r.latP50, r.latP99 = h.P50US, h.P99US
		}
		if h, ok := rep.Latency.Class["bulk"]; ok {
			r.bulkP50, r.bulkP99 = h.P50US, h.P99US
		}
	}
	if rep.Admission != nil {
		r.jain = rep.Admission.JainFairness
		for _, ten := range rep.Admission.Tenants {
			r.rejected += ten.RejectedRequests
		}
	}
	fmt.Printf("%-6s latency-class p50 %8.0fµs  p99 %8.0fµs  (%d served @ open loop)\n",
		name, r.latP50, r.latP99, r.latServed)
	fmt.Printf("%-6s bulk-class    p50 %8.0fµs  p99 %8.0fµs  (%d served @ closed loop)\n",
		"", r.bulkP50, r.bulkP99, r.bulkServed)
	if rep.Admission != nil {
		fmt.Printf("%-6s jain fairness %.3f  admission rejections %d\n", "", r.jain, r.rejected)
	}
	return r
}

func main() {
	suite := flag.String("suite", "LP", "Table 3 suite matrix to serve")
	scale := flag.Float64("scale", 0.05, "matrix scale")
	duration := flag.Duration("duration", 5*time.Second, "measured run length per mode")
	latClients := flag.Int("lat-clients", 4, "open-loop latency-class clients")
	bulkClients := flag.Int("bulk-clients", 8, "closed-loop bulk-class clients")
	latRate := flag.Float64("lat-rate", 50, "arrival rate per latency client, req/s")
	flag.Parse()

	fmt.Printf("mixed SLO load on a 1-slot server: %d open-loop latency clients @ %g req/s vs %d closed-loop bulk clients, %s per mode\n\n",
		*latClients, *latRate, *bulkClients, *duration)

	fifo := run("fifo", sched.Config{}, *suite, *scale, *duration, *latClients, *bulkClients, *latRate)
	slo := run("sched", sched.Config{Enabled: true}, *suite, *scale, *duration, *latClients, *bulkClients, *latRate)

	fmt.Println()
	if fifo.latP99 > 0 && slo.latP99 > 0 {
		fmt.Printf("latency-class p99: %.0fµs -> %.0fµs (%.1fx lower with scheduling)\n",
			fifo.latP99, slo.latP99, fifo.latP99/slo.latP99)
	}
	if fifo.bulkServed > 0 {
		fmt.Printf("bulk throughput:   %d -> %d requests (%.1f%% of FIFO)\n",
			fifo.bulkServed, slo.bulkServed, 100*float64(slo.bulkServed)/float64(fifo.bulkServed))
	}
}

// serve-loadgen drives the in-process serving subsystem (server.Client)
// with concurrent single-vector Mul requests, once with the adaptive
// batcher enabled and once without, and reports the throughput of each —
// demonstrating that coalescing concurrent requests into fused multi-RHS
// sweeps (§2.1's multiple-vectors optimization) beats per-request serving:
// the matrix streams once for up to k requests.
//
//	go run ./examples/serve-loadgen [-suite LP] [-scale 0.1] [-clients 8] [-requests 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/server"
)

func run(name string, cfg server.Config, suite string, scale float64, clients, requests int) (reqPerSec float64) {
	s := server.New(cfg)
	defer s.Close()
	c := s.Client()
	info, err := c.RegisterSuite("m", suite, scale, 7)
	if err != nil {
		log.Fatal(err)
	}

	xs := make([][]float64, clients)
	for g := range xs {
		rng := rand.New(rand.NewSource(int64(g)))
		xs[g] = make([]float64, info.Cols)
		for i := range xs[g] {
			xs[g][i] = rng.NormFloat64()
		}
	}

	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				if _, err := c.Mul("m", xs[g]); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	st := c.Stats()
	reqPerSec = float64(st.Requests) / elapsed.Seconds()
	fmt.Printf("%-10s %8.0f req/s  %6d sweeps for %5d requests (mean width %.2f)  %7.1f MB matrix stream saved\n",
		name, reqPerSec, st.Sweeps, st.Requests, st.MeanFusedWidth(), float64(st.SavedBytes)/1e6)
	if lat := c.Latency(); lat != nil {
		if h, ok := lat.Matrix["m"]; ok {
			fmt.Printf("%-10s measured mul latency: p50 %.0fµs  p99 %.0fµs  (mean %.0fµs over %d requests)\n",
				"", h.P50US, h.P99US, h.MeanUS, h.Count)
		}
	}
	return reqPerSec
}

func main() {
	suite := flag.String("suite", "LP", "Table 3 suite matrix to serve")
	scale := flag.Float64("scale", 0.1, "matrix scale")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	requests := flag.Int("requests", 400, "requests per client")
	maxBatch := flag.Int("max-batch", 8, "widest fused sweep when batching")
	window := flag.Duration("window", 200*time.Microsecond, "batch linger window")
	flag.Parse()

	fmt.Printf("serving %s twin at scale %g to %d clients x %d requests\n\n",
		*suite, *scale, *clients, *requests)

	unbatched := server.DefaultConfig()
	unbatched.MaxBatch = 1
	u := run("unbatched", unbatched, *suite, *scale, *clients, *requests)

	batched := server.DefaultConfig()
	batched.MaxBatch = *maxBatch
	batched.BatchWindow = *window
	batched.Adaptive = false
	b := run("batched", batched, *suite, *scale, *clients, *requests)

	fmt.Printf("\nbatched serving: %.2fx the unbatched throughput\n", b/u)
}

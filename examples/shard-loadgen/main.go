// shard-loadgen demonstrates K-shard serving: the same matrix is served by
// a single node and by clusters of K in-process member nodes (the shard
// coordinator of internal/server over LocalTransports), driven by
// concurrent closed-loop clients.
//
// Two throughput views are reported for every topology:
//
//   - measured: wall-clock req/s on this host. In-process members share
//     the host's cores, so this line shows real scaling only on machines
//     with >= K cores.
//   - aggregate (modeled): the bandwidth-bound sustainable rate, each
//     member modeled as one Opteron socket of the paper's testbed
//     (internal/machine). SpMV serving is bandwidth-bound (§5.1), so a
//     node sustains at most BW / bytes-per-sweep requests/s and a K-shard
//     fleet is bounded by its most-loaded member's band. This is the
//     deterministic scaling a fleet of K single-socket nodes delivers,
//     independent of how many cores the demo host happens to have.
//
// Sharding scales because the nonzero-balanced row bands split the matrix
// stream ~K ways while each member still runs its own tuner, batcher and
// fused sweeps. Results are bitwise identical across topologies (verified
// on every run here; see Config.Deterministic).
//
// The run ends with a skewed-member scenario: a 2-fast/1-slow fleet
// (one member's transport delayed, standing in for a degraded node)
// served under replicas=2, first with blind round-robin routing, then
// with the least-loaded policy. Round-robin keeps sending half of each
// band's traffic to the slow member and inherits its latency; the
// least-loaded router sees the slow member's in-flight modeled bytes
// pile up and steers requests to the fast replica of each band.
//
//	go run ./examples/shard-loadgen [-suite LP] [-scale 0.1] [-shards 2,4] [-clients 8] [-requests 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	spmv "repro"
	"repro/internal/machine"
	"repro/internal/server"
	"repro/internal/traffic"
)

// drive runs clients*requests closed-loop Muls through mul and returns
// wall-clock req/s.
func drive(mul func([]float64) ([]float64, error), cols, clients, requests int) float64 {
	xs := make([][]float64, clients)
	for g := range xs {
		rng := rand.New(rand.NewSource(int64(g)))
		xs[g] = make([]float64, cols)
		for i := range xs[g] {
			xs[g][i] = rng.NormFloat64()
		}
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				if _, err := mul(xs[g]); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	return float64(clients*requests) / time.Since(t0).Seconds()
}

func main() {
	suite := flag.String("suite", "LP", "Table 3 suite matrix to serve")
	scale := flag.Float64("scale", 0.1, "matrix scale")
	shardList := flag.String("shards", "2,4", "comma-separated shard counts to compare against single-node")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	requests := flag.Int("requests", 100, "requests per client")
	replicas := flag.Int("replicas", 1, "member replicas per shard band")
	skewDelay := flag.Duration("skew-delay", 2*time.Millisecond, "per-sub-request delay of the slow member in the skewed-fleet scenario (0 skips it)")
	flag.Parse()

	m, err := spmv.GenerateSuite(*suite, *scale, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Each member node is modeled as one socket of the paper's AMD X2
	// testbed sustaining its SpMV-measured fraction of peak DRAM bandwidth.
	amd := machine.AMDX2()
	nodeBW := amd.MemCtrl.PerSocketGBs * amd.SustainedBWFracSocket

	// Single-node baseline.
	single := server.New(server.DefaultConfig())
	defer single.Close()
	info, err := single.Register("m", *suite, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s twin at scale %g: %dx%d, %d nnz, %.2f MB/sweep modeled\n",
		*suite, *scale, info.Rows, info.Cols, info.NNZ, float64(info.SweepBytes)/1e6)
	fmt.Printf("node model: one %s socket, %.2f GB/s sustained\n\n", amd.Name, nodeBW)

	probe := make([]float64, info.Cols)
	rng := rand.New(rand.NewSource(99))
	for i := range probe {
		probe[i] = rng.NormFloat64()
	}
	want, err := single.Mul("m", probe)
	if err != nil {
		log.Fatal(err)
	}

	singleRate := traffic.SustainedSweepRate(nodeBW, info.SweepBytes)
	singleMeasured := drive(func(x []float64) ([]float64, error) { return single.Mul("m", x) },
		info.Cols, *clients, *requests)
	fmt.Printf("%-8s %10.0f req/s measured  %10.0f req/s aggregate (modeled)  1.00x\n",
		"K=1", singleMeasured, singleRate)

	var lastSpeedup float64
	var lastK int
	for _, ks := range strings.Split(*shardList, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(ks))
		if err != nil || k < 2 {
			log.Fatalf("bad shard count %q", ks)
		}
		transports := make([]server.Transport, k)
		servers := make([]*server.Server, k)
		for i := range transports {
			servers[i] = server.New(server.DefaultConfig())
			transports[i] = server.NewLocalTransport(fmt.Sprintf("node%d", i), servers[i])
		}
		cluster, err := server.NewCluster(transports, server.ClusterConfig{Replicas: *replicas})
		if err != nil {
			log.Fatal(err)
		}
		sinfo, err := cluster.RegisterSharded("m", *suite, m, k)
		if err != nil {
			log.Fatal(err)
		}

		// Bitwise parity with single-node serving, every run.
		got, err := cluster.Mul("m", probe)
		if err != nil {
			log.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				log.Fatalf("K=%d: y[%d] diverged from single-node serving", k, i)
			}
		}

		// The fleet's aggregate rate is bounded by its most-loaded member:
		// every request lands one band sub-request on each node.
		rate := traffic.SustainedSweepRate(nodeBW, sinfo.MaxBandSweepBytes)
		measured := drive(func(x []float64) ([]float64, error) { return cluster.Mul("m", x) },
			info.Cols, *clients, *requests)
		speedup := rate / singleRate
		fmt.Printf("K=%-6d %10.0f req/s measured  %10.0f req/s aggregate (modeled)  %.2fx\n",
			k, measured, rate, speedup)
		lastSpeedup, lastK = speedup, k
		for _, s := range servers {
			s.Close()
		}
	}

	fmt.Printf("\naggregate throughput at K=%d: %.2fx single-node (bandwidth-bound model, bitwise-identical results)\n",
		lastK, lastSpeedup)

	if *skewDelay > 0 {
		skewScenario(m, *suite, want, probe, *clients, *requests, *skewDelay)
	}
}

// slowTransport delays every Mul, standing in for a degraded member (a
// throttled socket, a saturated NIC) that still answers correctly.
type slowTransport struct {
	server.Transport
	delay time.Duration
}

func (t *slowTransport) Mul(id string, x []float64) ([]float64, error) {
	time.Sleep(t.delay)
	return t.Transport.Mul(id, x)
}

// skewScenario serves the matrix from a 2-fast/1-slow three-member fleet
// at K=3, replicas=2, under round-robin and then least-loaded routing,
// reporting measured throughput and the per-member request distribution
// for each policy.
func skewScenario(m *spmv.Matrix, suite string, want, probe []float64, clients, requests int, delay time.Duration) {
	fmt.Printf("\nskewed fleet: 3 members, node2 delayed %s per sub-request, K=3, replicas=2\n", delay)
	run := func(policy server.RoutePolicy) float64 {
		servers := make([]*server.Server, 3)
		transports := make([]server.Transport, 3)
		for i := range servers {
			servers[i] = server.New(server.DefaultConfig())
			defer servers[i].Close()
			transports[i] = server.NewLocalTransport(fmt.Sprintf("node%d", i), servers[i])
		}
		transports[2] = &slowTransport{Transport: transports[2], delay: delay}
		cluster, err := server.NewCluster(transports, server.ClusterConfig{Replicas: 2, Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cluster.RegisterSharded("m", suite, m, 3); err != nil {
			log.Fatal(err)
		}
		got, err := cluster.Mul("m", probe)
		if err != nil {
			log.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				log.Fatalf("%s: y[%d] diverged from single-node serving", policy, i)
			}
		}
		rate := drive(func(x []float64) ([]float64, error) { return cluster.Mul("m", x) },
			len(probe), clients, requests)
		var dist []string
		for _, mi := range cluster.Members() {
			dist = append(dist, fmt.Sprintf("%s=%d", mi.Name, mi.Requests))
		}
		fmt.Printf("%-14s %10.0f req/s measured   sub-requests: %s\n",
			policy, rate, strings.Join(dist, " "))
		return rate
	}
	rr := run(server.RouteRoundRobin)
	ll := run(server.RouteLeastLoaded)
	fmt.Printf("least-loaded vs round-robin on the skewed fleet: %.2fx\n", ll/rr)
}

// Quickstart: build a small sparse matrix, compile it with the auto-tuner,
// multiply, and inspect what the tuner decided.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	spmv "repro"
)

func main() {
	// A 1D Poisson operator (tridiagonal, 2 on the diagonal, -1 off it):
	// the "hello world" of sparse linear algebra.
	const n = 10000
	a := spmv.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		must(a.Set(i, i, 2))
		if i > 0 {
			must(a.Set(i, i-1, -1))
		}
		if i < n-1 {
			must(a.Set(i, i+1, -1))
		}
	}

	// Compile with the paper's full heuristic tuner (register blocking,
	// 16/32-bit index choice, BCOO, cache+TLB blocking).
	op, err := spmv.Compile(a, spmv.DefaultTuneOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Multiply: y = A x with x = all ones. Interior rows sum to zero;
	// boundary rows to one.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	y, err := op.Mul(x)
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < n-1; i++ {
		if math.Abs(y[i]) > 1e-12 {
			log.Fatalf("row %d: y=%g, want 0", i, y[i])
		}
	}
	if y[0] != 1 || y[n-1] != 1 {
		log.Fatalf("boundary rows: %g %g, want 1 1", y[0], y[n-1])
	}
	fmt.Println("y = A·x verified (interior rows 0, boundary rows 1)")

	// What did the tuner do?
	fmt.Printf("\nkernel    : %s\n", op.KernelName())
	fmt.Printf("footprint : %d bytes (CSR32 baseline %d, %.1f%% saved)\n",
		op.FootprintBytes(), op.BaselineBytes(), 100*op.Savings())
	for i, d := range op.Decisions() {
		fmt.Printf("block %2d  : %s %s idx%d  fill %.2f  %d bytes\n",
			i, d.Format, d.Shape, d.IndexBits, d.Fill, d.Footprint)
		if i == 4 && len(op.Decisions()) > 6 {
			fmt.Printf("  ... and %d more cache blocks\n", len(op.Decisions())-5)
			break
		}
	}

	// The same matrix compiled for 4 threads (row partitioning balanced by
	// nonzeros, one goroutine per partition).
	par, err := spmv.CompileParallel(a, spmv.DefaultTuneOptions(), 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	y2, err := par.Mul(x)
	if err != nil {
		log.Fatal(err)
	}
	for i := range y {
		if y[i] != y2[i] {
			log.Fatalf("parallel result differs at row %d", i)
		}
	}
	fmt.Printf("\nparallel  : %s over %d goroutines, identical result\n",
		par.KernelName(), par.Threads())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

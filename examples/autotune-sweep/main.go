// Autotune sweep: enumerate every register-block shape × index width for a
// suite matrix, print footprint and fill, and show which candidate the
// §4.2 footprint-minimizing heuristic selects. This is the paper's Table-2
// data-structure optimization space, made visible.
//
//	go run ./examples/autotune-sweep [-matrix FEM/Cantilever] [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"

	spmv "repro"
)

func main() {
	name := flag.String("matrix", "FEM/Cantilever", "suite matrix name")
	scale := flag.Float64("scale", 0.02, "scale factor")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	m, err := spmv.GenerateSuite(*name, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	st := m.Stats()
	fmt.Printf("%s: %d x %d, %d nonzeros (%.1f/row), %d empty rows\n\n",
		*name, st.Rows, st.Cols, st.NNZ, st.NNZPerRow, st.EmptyRows)

	// Sweep: compile with register blocking forced on but cache blocking
	// off, once per configuration subset, and record footprints. The
	// public API exposes the winning decision; to show the whole space we
	// recompile under progressively restricted options.
	type rowT struct {
		label     string
		footprint int64
		savings   float64
		kernel    string
		fill      float64
	}
	var rows []rowT
	add := func(label string, opt spmv.TuneOptions) {
		op, err := spmv.Compile(m, opt)
		if err != nil {
			log.Fatal(err)
		}
		fill := 1.0
		if len(op.Decisions()) > 0 {
			fill = op.Decisions()[0].Fill
		}
		rows = append(rows, rowT{label, op.FootprintBytes(), op.Savings(), op.KernelName(), fill})
	}

	add("CSR32 (naive)", spmv.NaiveOptions())
	add("CSR + 16-bit idx", spmv.TuneOptions{ReduceIndices: true})
	add("RB, 32-bit only", spmv.TuneOptions{RegisterBlock: true})
	add("RB + 16-bit idx", spmv.TuneOptions{RegisterBlock: true, ReduceIndices: true})
	add("RB + 16-bit + BCOO", spmv.TuneOptions{RegisterBlock: true, ReduceIndices: true, AllowBCOO: true})
	full := spmv.DefaultTuneOptions()
	add("full (+cache/TLB blocking)", full)

	fmt.Printf("%-28s %14s %10s %8s  %s\n", "configuration", "footprint B", "B/nnz", "saved", "kernel (fill of first block)")
	for _, r := range rows {
		fmt.Printf("%-28s %14d %10.2f %7.1f%%  %s (%.2f)\n",
			r.label, r.footprint, float64(r.footprint)/float64(st.NNZ),
			100*r.savings, r.kernel, r.fill)
	}

	fmt.Println("\nper-block decisions of the full tuner:")
	op, err := spmv.Compile(m, full)
	if err != nil {
		log.Fatal(err)
	}
	byKind := map[string]int{}
	for _, d := range op.Decisions() {
		byKind[fmt.Sprintf("%s %s /%d", d.Format, d.Shape, d.IndexBits)]++
	}
	for kind, count := range byKind {
		fmt.Printf("  %3d block(s) as %s\n", count, kind)
	}
}

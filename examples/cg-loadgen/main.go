// cg-loadgen measures what solver-session residency buys over the wire:
// the same CG solve is run twice against a live spmv-serve HTTP endpoint —
//
//   - naive: the solver loop lives in the client, so every iteration
//     round-trips one POST /v1/matrices/{id}/mul (the search direction up,
//     A·p back — two dense vectors of JSON per step);
//   - session: one POST /v1/matrices/{id}/solve ships b once, the solver
//     state stays server-resident (x, r, p, Ap never cross the wire), and
//     the client polls GET /v1/solve/{sid} for the residual history.
//
// The comparison prints measured iterations/second for both modes, the
// wire bytes they moved, and the traffic model's DRAM bytes per iteration
// (internal/traffic.CGIterationBytes) for the modeled-vs-measured entry
// in EXPERIMENTS.md.
//
//	go run ./examples/cg-loadgen [-side 120] [-threads 4] [-tol 1e-8] [-maxiter 4000]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"time"

	spmv "repro"
	"repro/internal/server"
)

func main() {
	side := flag.Int("side", 120, "Poisson grid side (n = side^2 unknowns)")
	threads := flag.Int("threads", 4, "server threads and workers")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	maxIter := flag.Int("maxiter", 4000, "iteration budget")
	flag.Parse()
	n := *side * *side

	// Serving endpoint: deterministic mode, real HTTP on a loopback port.
	cfg := server.DefaultConfig()
	cfg.Threads = *threads
	cfg.Workers = *threads
	s := server.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	m := poisson(*side)
	info, err := s.Register("poisson", "poisson", m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system    : %d x %d, %d nnz, kernel %s, served at %s\n",
		info.Rows, info.Cols, info.NNZ, info.Kernel, base)

	rng := rand.New(rand.NewSource(1))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	// Naive: client-side CG, one mul round-trip per iteration.
	naive := newMeter()
	x, iters, relres := clientCG(naive, base, b, *tol, *maxIter)
	naiveElapsed := naive.elapsed()
	fmt.Printf("naive     : %4d iters in %7.1fms  (%6.0f iters/s)  residual %.2e  wire %s\n",
		iters, ms(naiveElapsed), float64(iters)/naiveElapsed.Seconds(), relres, naive.wire())
	if lat := s.Latency(); lat != nil {
		if h, ok := lat.Endpoint["mul"]; ok {
			fmt.Printf("          : measured mul round-trip p50 %.0fµs  p99 %.0fµs (server-side, %d requests)\n",
				h.P50US, h.P99US, h.Count)
		}
	}
	_ = x

	// Session: one solve request, state server-resident, poll to done.
	sess := newMeter()
	fin := sessionCG(sess, base, b, *tol, *maxIter)
	sessElapsed := sess.elapsed()
	fmt.Printf("session   : %4d iters in %7.1fms  (%6.0f iters/s)  residual %.2e  wire %s\n",
		fin.Iters, ms(sessElapsed), float64(fin.Iters)/sessElapsed.Seconds(), fin.Residual, sess.wire())
	if lat := s.Latency(); lat != nil {
		if h, ok := lat.Stage["solve_iter"]; ok {
			fmt.Printf("          : measured iteration p50 %.0fµs  p99 %.0fµs (server-resident, %d iterations)\n",
				h.P50US, h.P99US, h.Count)
		}
	}

	naiveRate := float64(iters) / naiveElapsed.Seconds()
	sessRate := float64(fin.Iters) / sessElapsed.Seconds()
	fmt.Printf("residency : %.2fx iterations/s, %.0fx fewer wire bytes\n",
		sessRate/naiveRate, float64(naive.bytes)/float64(max(sess.bytes, 1)))
	fmt.Printf("modeled   : %.1f KB DRAM per session iteration (sweep + BLAS-1 tail)\n",
		float64(fin.ModeledBytesPerIter)/1e3)
	fmt.Printf("          : sustained-DRAM bound at 10 GB/s = %.0f iters/s; measured session rate is %.1f%% of it\n",
		1e10/float64(fin.ModeledBytesPerIter), 100*sessRate*float64(fin.ModeledBytesPerIter)/1e10)
}

// poisson assembles the 2D 5-point stencil: SPD, the canonical CG system.
func poisson(side int) *spmv.Matrix {
	n := side * side
	m := spmv.NewMatrix(n, n)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := at(r, c)
			must(m.Set(i, i, 4))
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				rr, cc := r+d[0], c+d[1]
				if rr >= 0 && rr < side && cc >= 0 && cc < side {
					must(m.Set(i, at(rr, cc), -1))
				}
			}
		}
	}
	return m
}

// meter tracks wall time and wire bytes (request + response bodies).
type meter struct {
	start time.Time
	bytes int64
}

func newMeter() *meter                  { return &meter{start: time.Now()} }
func (m *meter) elapsed() time.Duration { return time.Since(m.start) }
func (m *meter) wire() string {
	return fmt.Sprintf("%.1f MB", float64(m.bytes)/1e6)
}

// call posts a JSON body (or GETs when body is nil) and decodes the reply,
// accounting both directions' bytes.
func call(mt *meter, method, url string, body, out any) {
	var req *http.Request
	var err error
	if body != nil {
		buf, merr := json.Marshal(body)
		if merr != nil {
			log.Fatal(merr)
		}
		mt.bytes += int64(len(buf))
		req, err = http.NewRequest(method, url, bytes.NewReader(buf))
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	mt.bytes += int64(raw.Len())
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d %s", method, url, resp.StatusCode, raw.String())
	}
	if out != nil {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			log.Fatal(err)
		}
	}
}

// clientCG is the naive mode: textbook CG with the SpMV outsourced to
// POST /mul, everything else local.
func clientCG(mt *meter, base string, b []float64, tol float64, maxIter int) (x []float64, iters int, relres float64) {
	n := len(b)
	x = make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rr := dot(r, r)
	bnorm := math.Sqrt(rr)
	for iters = 0; iters < maxIter && math.Sqrt(rr)/bnorm > tol; iters++ {
		var mul struct {
			Y []float64 `json:"y"`
		}
		call(mt, "POST", base+"/v1/matrices/poisson/mul", map[string]any{"x": p}, &mul)
		ap := mul.Y
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, iters, math.Sqrt(rr) / bnorm
}

// sessionCG is the resident mode: one solve request, then status polls.
func sessionCG(mt *meter, base string, b []float64, tol float64, maxIter int) server.SolveStatus {
	var st server.SolveStatus
	call(mt, "POST", base+"/v1/matrices/poisson/solve",
		server.SolveRequest{Method: "cg", B: b, Tol: tol, MaxIters: maxIter}, &st)
	for st.State == "running" {
		call(mt, "GET", base+"/v1/solve/"+st.SID+"?wait=1s", nil, &st)
	}
	if st.State != "converged" {
		log.Fatalf("session ended %q after %d iters: %s", st.State, st.Iters, st.Error)
	}
	return st
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

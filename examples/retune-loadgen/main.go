// retune-loadgen demonstrates workload-aware online re-tuning in the
// serving layer: the best SpMV encoding depends on the workload, not just
// the matrix (Williams et al., and the reason OSKI-style systems keep
// re-tuning as usage evolves), so the server watches each matrix's
// observed request mix and re-tunes when it drifts.
//
// The scenario: a matrix is registered while traffic is lone width-1
// requests — the registration-time tune guesses a single-vector workload.
// Then the workload shifts to wide bursts (width-16 fused sweeps, e.g. a
// block-Krylov client or a traffic spike the batcher coalesces). The
// background re-tuner notices the fused-width histogram drifting, re-runs
// the tuner with workload-derived options off the hot path, shadow-
// benchmarks the candidate on the captured request shapes, and promotes
// it atomically — after which every fused sweep streams the workload-
// tuned encoding (register-blocked / compact-index / symmetric) instead
// of the plain CSR fallback, cutting the modeled matrix stream per sweep
// (~1.5x on a register-blocked twin, ~2x when symmetry wins).
//
//	go run ./examples/retune-loadgen [-suite Dense] [-scale 0.05] [-burst 16] [-symmetrize]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	spmv "repro"
	"repro/internal/server"
)

func main() {
	suite := flag.String("suite", "Dense", "Table 3 suite twin to serve")
	scale := flag.Float64("scale", 0.05, "suite scale")
	burst := flag.Int("burst", 16, "concurrent clients per burst (the shifted workload's fused width)")
	phase1 := flag.Int("phase1", 64, "lone width-1 requests before the shift")
	rounds := flag.Int("rounds", 40, "max bursts to run while waiting for the promotion")
	symmetrize := flag.Bool("symmetrize", true, "serve the symmetrized twin so the symmetric candidate competes too")
	flag.Parse()

	cfg := server.DefaultConfig()
	// Full candidate family: with determinism off the re-tuner may change
	// the fused summation order, so register-blocked wide kernels and the
	// symmetric operator are all on the table. (Deterministic servers
	// re-tune too, restricted to bit-identical CSR-family candidates.)
	cfg.Deterministic = false
	// The point of the demo: registration guesses, the workload decides.
	// Auto-symmetric detection off means even a symmetric matrix starts
	// on general storage until observed traffic justifies the switch.
	cfg.AutoSymmetric = false
	cfg.MaxBatch = *burst
	cfg.BatchWindow = 2 * time.Millisecond
	cfg.Adaptive = true
	cfg.RetuneInterval = 100 * time.Millisecond
	cfg.RetuneMinRequests = 32
	s := server.New(cfg)
	defer s.Close()
	c := s.Client()

	m, err := spmv.GenerateSuite(*suite, *scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	name := *suite
	if *symmetrize {
		if m, err = spmv.Symmetrize(m); err != nil {
			log.Fatal(err)
		}
		name += " (symmetrized)"
	}
	info, err := c.Register("m", name, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s: %dx%d, %d nnz, kernel %s\n", name, info.Rows, info.Cols, info.NNZ, info.Kernel)

	xs := make([][]float64, *burst)
	for g := range xs {
		rng := rand.New(rand.NewSource(int64(g)))
		xs[g] = make([]float64, info.Cols)
		for i := range xs[g] {
			xs[g][i] = rng.NormFloat64()
		}
	}

	// Phase 1: lone width-1 requests — the workload the tuner guessed.
	for i := 0; i < *phase1; i++ {
		if _, err := c.Mul("m", xs[i%len(xs)]); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := c.Tuning("m")
	if err != nil {
		log.Fatal(err)
	}
	before := rep
	fmt.Printf("phase 1 (lone requests): median width %d, drift %.2f, %.2f MB matrix stream per fused sweep, generation %d\n",
		rep.ObservedMedianWidth, rep.Drift, float64(rep.MatrixBytes)/1e6, rep.Generation)

	// Phase 2: the workload shifts to wide bursts; the background
	// re-tuner (every 100ms here) detects the drift and promotes.
	fmt.Printf("phase 2: shifting to width-%d bursts...\n", *burst)
	promoted := false
	for r := 0; r < *rounds && !promoted; r++ {
		oneBurst(c, xs)
		if rep, err = c.Tuning("m"); err != nil {
			log.Fatal(err)
		}
		promoted = rep.Generation > before.Generation
		if !promoted {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !promoted {
		log.Fatalf("no promotion after %d bursts: %+v", *rounds, rep)
	}
	fmt.Printf("promoted at generation %d: kernel %s (wide=%v symmetric=%v), tuned for width %d\n",
		rep.Generation, rep.Kernel, rep.Wide, rep.Symmetric, rep.TunedWidth)
	for _, ev := range rep.Events {
		if ev.Decision == "promoted" {
			fmt.Printf("  shadow benchmark on captured shapes: %.0f -> %.0f modeled B/request (%.2fx better)\n",
				ev.IncumbentBytesPerRequest, ev.CandidateBytesPerRequest,
				ev.IncumbentBytesPerRequest/ev.CandidateBytesPerRequest)
		}
	}
	fmt.Printf("  fused matrix stream per sweep: %.2f -> %.2f MB (%.2fx improvement)\n",
		float64(before.MatrixBytes)/1e6, float64(rep.MatrixBytes)/1e6,
		float64(before.MatrixBytes)/float64(rep.MatrixBytes))

	// Phase 3: steady state on the promoted operator.
	for r := 0; r < 20; r++ {
		oneBurst(c, xs)
	}
	st := c.Stats()
	fmt.Printf("phase 3 (steady state): %d requests in %d sweeps (mean width %.1f), %.1f MB matrix stream saved by fusion, %d promotions / %d rejections\n",
		st.Requests, st.Sweeps, st.MeanFusedWidth(), float64(st.SavedBytes)/1e6, st.RetunePromotions, st.RetuneRejections)
}

// oneBurst fires len(xs) concurrent requests from a common start so the
// batcher fuses them into one wide sweep.
func oneBurst(c *server.Client, xs [][]float64) {
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for g := range xs {
		go func(g int) {
			defer wg.Done()
			<-start
			if _, err := c.Mul("m", xs[g]); err != nil {
				log.Fatal(err)
			}
		}(g)
	}
	close(start)
	wg.Wait()
}

// Conjugate-gradient solver built on the tuned SpMV operator — the
// workload class (iterative FEM solves) that motivates the paper: SpMV
// "dominates the performance of diverse applications in scientific and
// engineering computing", and in CG it is executed once per iteration.
//
//	go run ./examples/cg [-n 40000] [-threads 4] [-tol 1e-8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	spmv "repro"
)

func main() {
	n := flag.Int("n", 40000, "unknowns (2D Poisson grid of side sqrt(n))")
	threads := flag.Int("threads", 4, "parallel width of the SpMV operator")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	maxIter := flag.Int("maxiter", 2000, "iteration cap")
	flag.Parse()

	// Assemble a 2D Poisson (5-point stencil) system: symmetric positive
	// definite, the canonical CG test problem and a structural cousin of
	// the paper's Epidemiology matrix.
	side := int(math.Sqrt(float64(*n)))
	size := side * side
	a := spmv.NewMatrix(size, size)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			i := at(r, c)
			must(a.Set(i, i, 4))
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				rr, cc := r+d[0], c+d[1]
				if rr >= 0 && rr < side && cc >= 0 && cc < side {
					must(a.Set(i, at(rr, cc), -1))
				}
			}
		}
	}

	op, err := spmv.CompileParallel(a, spmv.DefaultTuneOptions(), *threads, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system    : %d x %d, %d nonzeros\n", size, size, op.NNZ())
	fmt.Printf("operator  : %s, footprint %.2f bytes/nnz (%.1f%% below CSR32)\n",
		op.KernelName(), float64(op.FootprintBytes())/float64(op.NNZ()), 100*op.Savings())

	// Manufactured solution: random x*, b = A x*.
	rng := rand.New(rand.NewSource(1))
	xStar := make([]float64, size)
	for i := range xStar {
		xStar[i] = rng.NormFloat64()
	}
	b, err := op.Mul(xStar)
	if err != nil {
		log.Fatal(err)
	}

	x, iters, relres, elapsed, err := solveCG(op, b, *tol, *maxIter)
	if err != nil {
		log.Fatal(err)
	}

	// Error against the manufactured solution.
	var errNorm, refNorm float64
	for i := range x {
		d := x[i] - xStar[i]
		errNorm += d * d
		refNorm += xStar[i] * xStar[i]
	}
	fmt.Printf("CG        : %d iterations, relative residual %.2e, %.1fms\n",
		iters, relres, float64(elapsed.Microseconds())/1000)
	fmt.Printf("solution  : relative error %.2e\n", math.Sqrt(errNorm/refNorm))
	spmvPerSec := float64(iters+1) / elapsed.Seconds()
	fmt.Printf("throughput: %.0f SpMV/s, effective %.2f Gflop/s\n",
		spmvPerSec, spmvPerSec*2*float64(op.NNZ())/1e9)
}

// solveCG runs unpreconditioned conjugate gradients: one SpMV, two dot
// products and three AXPYs per iteration.
func solveCG(op *spmv.Operator, b []float64, tol float64, maxIter int) (x []float64, iters int, relres float64, elapsed time.Duration, err error) {
	n := len(b)
	x = make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A*0
	p := append([]float64(nil), b...)
	ap := make([]float64, n)

	rr := dot(r, r)
	bNorm := math.Sqrt(rr)
	if bNorm == 0 {
		return x, 0, 0, 0, nil
	}
	start := time.Now()
	for iters = 0; iters < maxIter; iters++ {
		if math.Sqrt(rr)/bNorm <= tol {
			break
		}
		for i := range ap {
			ap[i] = 0
		}
		if err := op.MulAdd(ap, p); err != nil {
			return nil, iters, 0, 0, err
		}
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, iters, math.Sqrt(rr) / bNorm, time.Since(start), nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

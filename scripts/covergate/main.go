// covergate enforces per-package statement-coverage floors on a Go cover
// profile — the coverage analogue of scripts/benchgate. CI runs
//
//	go test -short -coverprofile=cover.out ./...
//	go run ./scripts/covergate -profile cover.out \
//	    -floor repro/internal/server=75 -floor repro/internal/tune=75 \
//	    -summary "$GITHUB_STEP_SUMMARY"
//
// and fails the build when a gated package's statement coverage falls
// below its floor. Ungated packages are reported but never fail.
// -summary appends a markdown table — every package's coverage, its
// floor, and the delta above/below it — to the given file (the CI job
// summary), so per-package movements are visible on every run without
// downloading the profile artifact.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// floors collects repeated -floor package=percent flags.
type floors map[string]float64

func (f floors) String() string {
	parts := make([]string, 0, len(f))
	for k, v := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f floors) Set(s string) error {
	pkg, pct, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want package=percent, got %q", s)
	}
	v, err := strconv.ParseFloat(pct, 64)
	if err != nil || v < 0 || v > 100 {
		return fmt.Errorf("bad floor %q: want a percentage in [0, 100]", pct)
	}
	f[pkg] = v
	return nil
}

// profileLine matches one cover-profile block record:
// name.go:line.col,line.col numStatements hitCount
var profileLine = regexp.MustCompile(`^(.+)/[^/]+\.go:\d+\.\d+,\d+\.\d+ (\d+) (\d+)$`)

func main() {
	profile := flag.String("profile", "cover.out", "cover profile produced by go test -coverprofile")
	summary := flag.String("summary", "", "append a markdown per-package coverage table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	gates := floors{}
	flag.Var(gates, "floor", "package=minPercent statement-coverage floor (repeatable)")
	flag.Parse()
	if len(gates) == 0 {
		fmt.Fprintln(os.Stderr, "covergate: no -floor given, nothing to enforce")
		os.Exit(2)
	}

	file, err := os.Open(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(2)
	}
	defer file.Close()

	type tally struct{ total, covered int64 }
	perPkg := map[string]*tally{}
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") {
			continue
		}
		m := profileLine.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintf(os.Stderr, "covergate: unparseable profile line %q\n", line)
			os.Exit(2)
		}
		stmts, _ := strconv.ParseInt(m[2], 10, 64)
		hits, _ := strconv.ParseInt(m[3], 10, 64)
		t := perPkg[m[1]]
		if t == nil {
			t = &tally{}
			perPkg[m[1]] = t
		}
		t.total += stmts
		if hits > 0 {
			t.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(2)
	}

	pkgs := make([]string, 0, len(perPkg))
	for pkg := range perPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	var md strings.Builder
	md.WriteString("### Coverage gate\n\n| package | coverage | floor | delta | |\n|---|---:|---:|---:|---|\n")
	failed := false
	for _, pkg := range pkgs {
		t := perPkg[pkg]
		pct := 100 * float64(t.covered) / float64(t.total)
		floor, gated := gates[pkg]
		switch {
		case gated && pct < floor:
			fmt.Printf("FAIL %-40s %6.1f%% < floor %.1f%%\n", pkg, pct, floor)
			fmt.Fprintf(&md, "| `%s` | %.1f%% | %.1f%% | %+.1f | ❌ |\n", pkg, pct, floor, pct-floor)
			failed = true
		case gated:
			fmt.Printf("ok   %-40s %6.1f%% >= floor %.1f%%\n", pkg, pct, floor)
			fmt.Fprintf(&md, "| `%s` | %.1f%% | %.1f%% | %+.1f | ✅ |\n", pkg, pct, floor, pct-floor)
		default:
			fmt.Printf("     %-40s %6.1f%%\n", pkg, pct)
			fmt.Fprintf(&md, "| `%s` | %.1f%% | — | — | |\n", pkg, pct)
		}
	}
	for pkg := range gates {
		if _, ok := perPkg[pkg]; !ok {
			fmt.Printf("FAIL %-40s absent from profile\n", pkg)
			fmt.Fprintf(&md, "| `%s` | absent | %.1f%% | — | ❌ |\n", pkg, gates[pkg])
			failed = true
		}
	}
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "covergate: summary: %v\n", err)
			os.Exit(2)
		}
		if _, err := f.WriteString(md.String()); err != nil {
			fmt.Fprintf(os.Stderr, "covergate: summary: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
	if failed {
		os.Exit(1)
	}
}

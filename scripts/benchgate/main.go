// benchgate compares a benchmark report (BENCH_ci.json, written by
// scripts/benchsmoke) against a committed baseline and fails on
// regression: any gated metric worse than baseline by more than the
// tolerance exits non-zero. It is the comparator behind the bench-smoke CI
// job, so a PR that slows a gated path turns the pipeline red.
//
//	go run ./scripts/benchgate -baseline bench_baseline.json -current BENCH_ci.json [-tolerance 0.15]
//
// Both files use the schema of scripts/benchsmoke: a "metrics" map of
// name -> {value, unit, gated, higher_better}. Only metrics gated in the
// BASELINE are enforced (the baseline is the contract); extra metrics in
// the current report are informational. Deterministic metrics (modeled
// bytes, footprint savings, sharded scaling) should gate tightly; wall-
// clock metrics should either stay informational or gate against a
// conservative committed floor, since CI runners are noisy and vary in
// core count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Metric is one measured value with its gating policy.
type Metric struct {
	Value        float64 `json:"value"`
	Unit         string  `json:"unit,omitempty"`
	Gated        bool    `json:"gated"`
	HigherBetter bool    `json:"higher_better"`
}

// Report is the benchsmoke/benchgate file schema.
type Report struct {
	Schema  int               `json:"schema"`
	Host    string            `json:"host,omitempty"`
	Metrics map[string]Metric `json:"metrics"`
}

func load(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Metrics) == 0 {
		return r, fmt.Errorf("%s: no metrics", path)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed baseline report")
	currentPath := flag.String("current", "BENCH_ci.json", "freshly measured report")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression on gated metrics")
	flag.Parse()

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	// Stable output order: gated first, then lexicographic.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			gi, gj := base.Metrics[names[i]].Gated, base.Metrics[names[j]].Gated
			if (gj && !gi) || (gi == gj && names[j] < names[i]) {
				names[i], names[j] = names[j], names[i]
			}
		}
	}

	failures := 0
	fmt.Printf("%-34s %12s %12s %8s  %s\n", "metric", "baseline", "current", "ratio", "verdict")
	for _, name := range names {
		b := base.Metrics[name]
		c, ok := cur.Metrics[name]
		if !ok {
			if b.Gated {
				fmt.Printf("%-34s %12.4g %12s %8s  FAIL (missing)\n", name, b.Value, "-", "-")
				failures++
			}
			continue
		}
		ratio := 0.0
		if b.Value != 0 {
			ratio = c.Value / b.Value
		}
		verdict := "info"
		if b.Gated {
			bad := false
			if b.HigherBetter {
				bad = c.Value < b.Value*(1-*tolerance)
			} else {
				bad = c.Value > b.Value*(1+*tolerance)
			}
			if bad {
				verdict = fmt.Sprintf("FAIL (>%.0f%% regression)", 100**tolerance)
				failures++
			} else {
				verdict = "ok"
			}
		}
		fmt.Printf("%-34s %12.4g %12.4g %8.3f  %s\n", name, b.Value, c.Value, ratio, verdict)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated metric(s) regressed beyond %.0f%%\n", failures, 100**tolerance)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated metrics within tolerance")
}

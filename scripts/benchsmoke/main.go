// benchsmoke is the scripted micro-benchmark behind the bench-smoke CI
// job. It exercises the three performance layers of the repo on small
// generated matrices and writes a JSON report (BENCH_ci.json) that
// scripts/benchgate compares against the committed bench_baseline.json:
//
//   - kernel: naive CSR vs the §4.2-tuned operator on a Cantilever twin —
//     measured GFlop/s for both (informational: absolute numbers track the
//     runner's hardware) plus the deterministic footprint saving (gated).
//   - serving: examples/serve-loadgen's comparison in miniature — batched
//     vs unbatched closed-loop serving of an LP twin (the batched:unbatched
//     ratio is gated against a conservative floor).
//   - sharding: the K=4 cluster of internal/server over in-process
//     members — modeled bandwidth-bound aggregate speedup (deterministic,
//     gated) with bitwise parity against single-node serving enforced as a
//     hard failure.
//   - routing: the 2-fast/1-slow K=3 fleet under round-robin vs
//     least-loaded — modeled bandwidth-bound throughput of each policy on
//     the registered band placement (deterministic; the speedup is gated).
//   - symmetry: a symmetrized Cantilever twin served from upper-triangle
//     (SymCSR) storage vs its general-CSR twin — the modeled matrix-stream
//     ratio (deterministic, gated at ≈0.5) with numerical agreement
//     enforced as a hard failure.
//   - mutation: the batched serving workload against a clean LP twin vs
//     the same twin carrying a live ~1.5%-dirty-row delta overlay
//     (recompaction held off) — the throughput ratio is gated against a
//     committed floor, with bitwise parity against a from-scratch rebuild
//     enforced as a hard failure.
//   - observability: the batched serving workload with the default
//     instrumentation (histograms + 1-in-16 trace sampling) vs ObsSample=0
//     (layer off, no hot-path timestamps) — the throughput ratio is gated
//     against a committed floor encoding the ≤2% overhead budget.
//
// Refresh the baseline with:
//
//	go run ./scripts/benchsmoke -out bench_baseline.json
//
// then review the diff before committing: deterministic metrics should
// move only when the modeled traffic or tuner genuinely changed, and
// wall-clock floors should stay conservative (see README "benchmark
// gate").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	spmv "repro"
	"repro/internal/machine"
	"repro/internal/matrix/delta"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/traffic"
)

// Metric mirrors scripts/benchgate's schema.
type Metric struct {
	Value        float64 `json:"value"`
	Unit         string  `json:"unit,omitempty"`
	Gated        bool    `json:"gated"`
	HigherBetter bool    `json:"higher_better"`
}

// Report mirrors scripts/benchgate's schema.
type Report struct {
	Schema  int               `json:"schema"`
	Host    string            `json:"host,omitempty"`
	Metrics map[string]Metric `json:"metrics"`
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// timeSweeps returns the best-of-three median time per y += A·x sweep.
func timeSweeps(op *spmv.Operator, x []float64, sweeps int) time.Duration {
	rows, _ := op.Dims()
	y := make([]float64, rows)
	times := make([]time.Duration, 3)
	for t := range times {
		t0 := time.Now()
		for s := 0; s < sweeps; s++ {
			if err := op.MulAdd(y, x); err != nil {
				log.Fatal(err)
			}
		}
		times[t] = time.Since(t0) / time.Duration(sweeps)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[1]
}

// kernelMetrics benchmarks naive vs tuned operators (cmd/spmv-bench's
// measured-kernel layer, reduced to a smoke check).
func kernelMetrics(metrics map[string]Metric) {
	m, err := spmv.GenerateSuite("FEM/Cantilever", 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := spmv.Compile(m, spmv.NaiveOptions())
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := spmv.Compile(m, spmv.DefaultTuneOptions())
	if err != nil {
		log.Fatal(err)
	}
	_, cols := m.Dims()
	x := randVec(cols, 3)
	flops := float64(2 * m.NNZ())
	tn := timeSweeps(naive, x, 10)
	tt := timeSweeps(tuned, x, 10)
	metrics["kernel_naive_gflops"] = Metric{Value: flops / tn.Seconds() / 1e9, Unit: "GFlop/s"}
	metrics["kernel_tuned_gflops"] = Metric{Value: flops / tt.Seconds() / 1e9, Unit: "GFlop/s"}
	metrics["kernel_tuned_speedup"] = Metric{Value: tn.Seconds() / tt.Seconds(), Unit: "x", HigherBetter: true}
	metrics["tuned_footprint_savings"] = Metric{
		Value: tuned.Savings(), Unit: "frac", Gated: true, HigherBetter: true,
	}
}

// serveThroughput drives the serving subsystem closed-loop and returns
// wall req/s (examples/serve-loadgen in miniature).
func serveThroughput(cfg server.Config, clients, requests int) float64 {
	s := server.New(cfg)
	defer s.Close()
	info, err := s.RegisterSuite("m", "LP", 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := randVec(info.Cols, int64(g))
			for i := 0; i < requests; i++ {
				if _, err := s.Mul("m", x); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	return float64(clients*requests) / time.Since(t0).Seconds()
}

func servingMetrics(metrics map[string]Metric) {
	unbatched := server.DefaultConfig()
	unbatched.MaxBatch = 1
	batched := server.DefaultConfig()
	batched.Adaptive = false

	u := serveThroughput(unbatched, 8, 50)
	b := serveThroughput(batched, 8, 50)
	metrics["serve_unbatched_req_s"] = Metric{Value: u, Unit: "req/s"}
	metrics["serve_batched_req_s"] = Metric{Value: b, Unit: "req/s"}
	// Emitted ungated: benchgate enforces only metrics the BASELINE gates,
	// and bench_baseline.json gates this ratio against a hand-set
	// conservative floor. Writing the measured value ungated here keeps a
	// baseline refresh from replacing that floor with one noisy run.
	metrics["serve_batched_speedup"] = Metric{Value: b / u, Unit: "x", HigherBetter: true}
}

// obsOverheadMetrics measures what the observability layer costs the
// serving hot path: the same batched closed-loop workload once with
// DefaultConfig's instrumentation on and once with ObsSample=0. Best of
// three per side so one scheduler hiccup doesn't decide the ratio; the
// ratio itself is emitted ungated (wall-clock) — bench_baseline.json
// gates it against a hand-set conservative floor.
func obsOverheadMetrics(metrics map[string]Metric) {
	on := server.DefaultConfig()
	on.Adaptive = false
	off := on
	off.ObsSample = 0
	best := func(cfg server.Config) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if v := serveThroughput(cfg, 8, 50); v > b {
				b = v
			}
		}
		return b
	}
	o := best(off)
	i := best(on)
	metrics["serve_obs_off_req_s"] = Metric{Value: o, Unit: "req/s"}
	metrics["serve_obs_on_req_s"] = Metric{Value: i, Unit: "req/s"}
	metrics["obs_overhead_ratio"] = Metric{Value: i / o, Unit: "x", HigherBetter: true}
}

// overlayOverheadMetrics measures what a live delta overlay costs the
// serving hot path: the same batched closed-loop LP workload once clean
// and once carrying a ~1.5%-dirty-row overlay with recompaction disabled
// (the worst steady state a mutated matrix is allowed to serve from —
// past the default threshold the background recompactor folds the log).
// Bitwise parity between the overlay path and a from-scratch rebuild is
// enforced as a hard failure; the throughput ratio is emitted ungated —
// bench_baseline.json gates it against a hand-set conservative floor.
func overlayOverheadMetrics(metrics map[string]Metric) {
	m, err := spmv.GenerateSuite("LP", 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	rows, cols := m.Dims()
	rng := rand.New(rand.NewSource(17))
	n := rows / 64
	if n < 16 {
		n = 16
	}
	deltas := make([]server.Delta, n)
	ops := make([]delta.Op, n)
	for i := range deltas {
		r, c, v := int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64()
		deltas[i] = server.Delta{Op: "set", Row: r, Col: c, Val: v}
		ops[i] = delta.Op{Kind: delta.Set, Row: r, Col: c, Val: v}
	}

	// From-scratch rebuild for the parity check.
	l := delta.NewLog(rows, cols, func(yield func(i, j int32, v float64)) {
		m.Entries(func(i, j int, v float64) { yield(int32(i), int32(j), v) })
	})
	if err := l.Apply(ops); err != nil {
		log.Fatal(err)
	}
	folded := spmv.NewMatrix(rows, cols)
	l.Fold(func(i, j int32, v float64) { _ = folded.Set(int(i), int(j), v) })

	newServer := func(withOverlay bool) *server.Server {
		cfg := server.DefaultConfig()
		cfg.Adaptive = false
		cfg.RecompactThreshold = -1 // hold the overlay live for the whole run
		s := server.New(cfg)
		if _, err := s.Register("m", "LP", m); err != nil {
			log.Fatal(err)
		}
		if withOverlay {
			if _, err := s.Client().Patch("m", deltas); err != nil {
				log.Fatal(err)
			}
		}
		return s
	}

	x := randVec(cols, 19)
	patched := newServer(true)
	got, err := patched.Mul("m", x)
	if err != nil {
		log.Fatal(err)
	}
	rebuild := newServer(false)
	if _, err := rebuild.DeleteMatrix("m"); err != nil {
		log.Fatal(err)
	}
	if _, err := rebuild.Register("m", "LP", folded); err != nil {
		log.Fatal(err)
	}
	want, err := rebuild.Mul("m", x)
	if err != nil {
		log.Fatal(err)
	}
	rebuild.Close()
	patched.Close()
	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("benchsmoke: overlay serving diverged from the rebuilt matrix at y[%d]", i)
		}
	}

	loop := func(s *server.Server) float64 {
		defer s.Close()
		const clients, requests = 8, 50
		var wg sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				x := randVec(cols, int64(g))
				for i := 0; i < requests; i++ {
					if _, err := s.Mul("m", x); err != nil {
						log.Fatal(err)
					}
				}
			}(g)
		}
		wg.Wait()
		return float64(clients*requests) / time.Since(t0).Seconds()
	}
	best := func(withOverlay bool) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if v := loop(newServer(withOverlay)); v > b {
				b = v
			}
		}
		return b
	}
	clean := best(false)
	overlaid := best(true)
	metrics["serve_overlay_off_req_s"] = Metric{Value: clean, Unit: "req/s"}
	metrics["serve_overlay_on_req_s"] = Metric{Value: overlaid, Unit: "req/s"}
	metrics["overlay_overhead_ratio"] = Metric{Value: overlaid / clean, Unit: "x", HigherBetter: true}
}

// schedOverheadMetrics measures what the admission/scheduling layer
// costs a workload that doesn't need it: the same batched closed-loop
// single-tenant run once FIFO and once with the class scheduler enabled
// (unmetered — buckets off, so the cost measured is the priority gate
// and per-class accounting on every request). Best of three per side;
// bench_baseline.json gates the ratio against a hand-set floor.
func schedOverheadMetrics(metrics map[string]Metric) {
	off := server.DefaultConfig()
	off.Adaptive = false
	on := off
	on.Sched = sched.Config{Enabled: true}
	best := func(cfg server.Config) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if v := serveThroughput(cfg, 8, 50); v > b {
				b = v
			}
		}
		return b
	}
	o := best(off)
	s := best(on)
	metrics["serve_sched_off_req_s"] = Metric{Value: o, Unit: "req/s"}
	metrics["serve_sched_on_req_s"] = Metric{Value: s, Unit: "req/s"}
	metrics["sched_overhead_ratio"] = Metric{Value: s / o, Unit: "x", HigherBetter: true}
}

// pinnedConfig is DefaultConfig with the parallel widths pinned to 1 so
// the tuner's per-thread-block decisions — and with them the modeled
// sweep bytes — do not vary with the runner's core count. The gated
// deterministic metrics must compare equal across CI machines.
func pinnedConfig() server.Config {
	cfg := server.DefaultConfig()
	cfg.Threads = 1
	cfg.Workers = 1
	cfg.Shards = 1
	return cfg
}

// shardingMetrics registers an LP twin on a K=4 in-process cluster,
// enforces bitwise parity with single-node serving, and reports the
// deterministic bandwidth-bound aggregate speedup.
func shardingMetrics(metrics map[string]Metric) {
	const k = 4
	m, err := spmv.GenerateSuite("LP", 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	single := server.New(pinnedConfig())
	defer single.Close()
	info, err := single.Register("m", "LP", m)
	if err != nil {
		log.Fatal(err)
	}

	transports := make([]server.Transport, k)
	for i := range transports {
		ms := server.New(pinnedConfig())
		defer ms.Close()
		transports[i] = server.NewLocalTransport(fmt.Sprintf("node%d", i), ms)
	}
	cluster, err := server.NewCluster(transports, server.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sinfo, err := cluster.RegisterSharded("m", "LP", m, k)
	if err != nil {
		log.Fatal(err)
	}

	x := randVec(info.Cols, 11)
	want, err := single.Mul("m", x)
	if err != nil {
		log.Fatal(err)
	}
	got, err := cluster.Mul("m", x)
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("benchsmoke: K=%d sharded serving diverged from single-node at y[%d]", k, i)
		}
	}

	amd := machine.AMDX2()
	nodeBW := amd.MemCtrl.PerSocketGBs * amd.SustainedBWFracSocket
	speedup := traffic.SustainedSweepRate(nodeBW, sinfo.MaxBandSweepBytes) /
		traffic.SustainedSweepRate(nodeBW, info.SweepBytes)
	metrics["shard_k4_model_speedup"] = Metric{Value: speedup, Unit: "x", Gated: true, HigherBetter: true}
	metrics["shard_k4_max_band_sweep_bytes"] = Metric{
		Value: float64(sinfo.MaxBandSweepBytes), Unit: "B", Gated: true, HigherBetter: false,
	}
	metrics["single_sweep_bytes"] = Metric{
		Value: float64(info.SweepBytes), Unit: "B", Gated: true, HigherBetter: false,
	}
}

// routeSkewMetrics models the routing-policy gate on a skewed fleet: the
// K=3, replicas=2 topology served by two full-speed members and one at a
// quarter of the socket's sustained bandwidth. Round-robin splits every
// band's traffic evenly across its replicas, so the fleet's rate is set
// by the slow member; the least-loaded policy converges on splitting
// each band in proportion to its replicas' bandwidth (in-flight modeled
// bytes drain slower on the slow node, so the router steers away until
// drain rates match). Both rates fall out of the bandwidth-bound model
// applied to the registered topology's real band placement, so the
// speedup is deterministic and gated. examples/shard-loadgen runs the
// measured (wall-clock) twin of this scenario.
func routeSkewMetrics(metrics map[string]Metric) {
	const k = 3
	m, err := spmv.GenerateSuite("LP", 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	transports := make([]server.Transport, k)
	for i := range transports {
		ms := server.New(pinnedConfig())
		defer ms.Close()
		transports[i] = server.NewLocalTransport(fmt.Sprintf("node%d", i), ms)
	}
	cluster, err := server.NewCluster(transports, server.ClusterConfig{
		Replicas: 2, Policy: server.RouteLeastLoaded,
	})
	if err != nil {
		log.Fatal(err)
	}
	sinfo, err := cluster.RegisterSharded("m", "LP", m, k)
	if err != nil {
		log.Fatal(err)
	}

	amd := machine.AMDX2()
	nodeBW := amd.MemCtrl.PerSocketGBs * amd.SustainedBWFracSocket
	bw := map[string]float64{"node0": nodeBW, "node1": nodeBW, "node2": nodeBW / 4}

	// Per-request modeled bytes landing on each member under each policy.
	rrBytes := make(map[string]float64)
	llBytes := make(map[string]float64)
	for _, b := range sinfo.Bands {
		var pool float64
		for _, name := range b.Members {
			pool += bw[name]
		}
		for _, name := range b.Members {
			rrBytes[name] += float64(b.SweepBytes) / float64(len(b.Members))
			llBytes[name] += float64(b.SweepBytes) * bw[name] / pool
		}
	}
	// A member sustaining bw serves at most bw/bytes requests/s; the fleet
	// is bounded by its slowest member.
	fleetRate := func(bytes map[string]float64) float64 {
		rate := 0.0
		for name, by := range bytes {
			if r := traffic.SustainedSweepRate(bw[name], int64(by)); rate == 0 || r < rate {
				rate = r
			}
		}
		return rate
	}
	rr := fleetRate(rrBytes)
	ll := fleetRate(llBytes)
	metrics["route_skew_rr_req_s"] = Metric{Value: rr, Unit: "req/s"}
	metrics["route_skew_ll_req_s"] = Metric{Value: ll, Unit: "req/s"}
	metrics["route_skew_ll_speedup"] = Metric{Value: ll / rr, Unit: "x", Gated: true, HigherBetter: true}
}

// symmetricMetrics registers a symmetrized Cantilever twin both general
// (naive CSR32 tuner) and symmetric (upper-triangle storage), enforces
// numerical agreement, and reports the deterministic matrix-stream ratio —
// the acceptance signal that symmetry halves the streamed bytes.
func symmetricMetrics(metrics map[string]Metric) {
	m, err := spmv.GenerateSuite("FEM/Cantilever", 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	sym, err := spmv.Symmetrize(m)
	if err != nil {
		log.Fatal(err)
	}
	symTrue, symFalse := true, false

	genCfg := pinnedConfig()
	genCfg.Tune = spmv.NaiveOptions() // the general-CSR twin of the comparison
	gen := server.New(genCfg)
	defer gen.Close()
	ginfo, err := gen.RegisterOpts("m", "cant-sym", sym, server.RegisterOptions{Symmetric: &symFalse})
	if err != nil {
		log.Fatal(err)
	}

	ssrv := server.New(pinnedConfig())
	defer ssrv.Close()
	sinfo, err := ssrv.RegisterOpts("m", "cant-sym", sym, server.RegisterOptions{Symmetric: &symTrue})
	if err != nil {
		log.Fatal(err)
	}
	if !sinfo.Symmetric {
		log.Fatal("benchsmoke: symmetric registration did not select the symmetric operator")
	}

	x := randVec(sinfo.Cols, 13)
	want, err := gen.Mul("m", x)
	if err != nil {
		log.Fatal(err)
	}
	got, err := ssrv.Mul("m", x)
	if err != nil {
		log.Fatal(err)
	}
	for i := range got {
		if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
			log.Fatalf("benchsmoke: symmetric serving diverged from general at y[%d] by %g", i, d)
		}
	}

	ratio := float64(sinfo.MatrixBytes) / float64(ginfo.MatrixBytes)
	metrics["sym_matrix_stream_bytes"] = Metric{Value: float64(sinfo.MatrixBytes), Unit: "B"}
	metrics["sym_matrix_stream_ratio"] = Metric{Value: ratio, Unit: "frac", Gated: true, HigherBetter: false}
}

func main() {
	out := flag.String("out", "BENCH_ci.json", "report path")
	flag.Parse()

	metrics := make(map[string]Metric)
	kernelMetrics(metrics)
	servingMetrics(metrics)
	shardingMetrics(metrics)
	routeSkewMetrics(metrics)
	symmetricMetrics(metrics)
	obsOverheadMetrics(metrics)
	schedOverheadMetrics(metrics)
	overlayOverheadMetrics(metrics)

	r := Report{
		Schema:  1,
		Host:    fmt.Sprintf("%s/%s gomaxprocs=%d", runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)),
		Metrics: metrics,
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		mt := metrics[n]
		gate := ""
		if mt.Gated {
			gate = " [gated]"
		}
		fmt.Printf("%-34s %12.4g %s%s\n", n, mt.Value, mt.Unit, gate)
	}
	fmt.Printf("benchsmoke: wrote %s\n", *out)
}

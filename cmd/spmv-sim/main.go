// Command spmv-sim replays the exact SpMV address stream of a matrix
// through a machine's simulated cache hierarchy (internal/sim) and prints
// the resulting cache, TLB and DRAM statistics — for plain CSR and for the
// tuned encoding side by side, making the data-structure optimizations'
// traffic savings directly observable.
//
// Usage:
//
//	spmv-sim [-matrix LP] [-scale 0.05] [-machine "AMD X2"] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/tune"
)

func main() {
	name := flag.String("matrix", "LP", "suite matrix name")
	scale := flag.Float64("scale", 0.05, "generator scale")
	seed := flag.Int64("seed", 7, "generator seed")
	machName := flag.String("machine", "AMD X2", `machine name ("AMD X2", "Clovertown", "Niagara")`)
	flag.Parse()

	m, err := machine.ByName(*machName)
	if err != nil {
		fatal(err)
	}
	if m.Kind == machine.LocalStore {
		fatal(fmt.Errorf("the Cell has no cache hierarchy to simulate; its local store is modeled analytically"))
	}
	coo, err := gen.GenerateByName(*name, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	csr, err := matrix.NewCSR[uint32](coo)
	if err != nil {
		fatal(err)
	}
	st := coo.ComputeStats()
	fmt.Printf("matrix : %s at scale %g — %d x %d, %d nnz (%.1f/row)\n",
		*name, *scale, st.Rows, st.Cols, st.NNZ, st.NNZPerRow)
	fmt.Printf("machine: %s (L1 %dKB/%dB lines, L2 %dMB/%d-way, TLB %d x %dKB pages)\n\n",
		m.Name, m.L1.Bytes>>10, m.L1.LineBytes, m.L2.Bytes>>20, m.L2.Assoc,
		m.TLB.L1Entries, m.TLB.PageBytes>>10)

	run := func(label string, enc matrix.Format) {
		h, err := sim.NewHierarchy(m)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(h, enc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-24s %12d accesses  L1 miss %5.2f%%  L2 miss %5.2f%%  TLB miss %6.3f%%  DRAM %8.2f MB\n",
			label, res.Accesses,
			100*res.L1.MissRate(), 100*res.L2.MissRate(), 100*res.TLB.MissRate(),
			float64(res.DRAMBytes)/1e6)
	}

	run("CSR32 (naive)", csr)

	rb, err := tune.Tune(csr, tune.Options{RegisterBlock: true, ReduceIndices: true, AllowBCOO: true})
	if err != nil {
		fatal(err)
	}
	run("register blocked", rb.Enc)

	full, err := tune.Tune(csr, tune.Options{
		RegisterBlock: true, ReduceIndices: true, AllowBCOO: true,
		CacheBlock: true, CacheBudgetBytes: m.L2.Bytes / 2, LineBytes: m.L2.LineBytes,
		TLBBlock: true, PageBytes: m.TLB.PageBytes, TLBEntries: m.TLB.L1Entries,
	})
	if err != nil {
		fatal(err)
	}
	run("fully tuned (RB+CB+TLB)", full.Enc)

	fmt.Printf("\nfootprints: CSR32 %d B -> tuned %d B (%.1f%% saved, %d cache blocks)\n",
		csr.FootprintBytes(), full.TotalFootprint, 100*full.Savings(), len(full.Decisions))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spmv-sim: %v\n", err)
	os.Exit(1)
}

// Command spmv-gen emits the synthetic Table-3 matrix suite as
// MatrixMarket files, so external tools (or a run against real hardware)
// can consume exactly the matrices this reproduction evaluates.
//
// Usage:
//
//	spmv-gen [-scale 0.05] [-seed 7] [-out ./matrices] [-matrix name]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
	"repro/internal/mmio"
)

func main() {
	scale := flag.Float64("scale", 0.05, "scale factor in (0,1]; 1.0 = paper dimensions")
	seed := flag.Int64("seed", 7, "generator seed")
	out := flag.String("out", "matrices", "output directory")
	only := flag.String("matrix", "", "generate only this suite matrix (default: all 14)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, spec := range gen.Suite {
		if *only != "" && spec.Name != *only {
			continue
		}
		m, err := gen.Generate(spec, *scale, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
		path := filepath.Join(*out, fileName(spec))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		comment := fmt.Sprintf("synthetic twin of %s (%s), scale %g, seed %d",
			spec.Name, spec.File, *scale, *seed)
		if err := mmio.Write(f, m, comment, spec.Notes); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := m.ComputeStats()
		fmt.Printf("%-16s -> %-28s %8d x %-8d %9d nnz (%.1f/row)\n",
			spec.Name, path, st.Rows, st.Cols, st.NNZ, st.NNZPerRow)
	}
}

// fileName derives a filesystem-safe .mtx name from the paper's filename.
func fileName(s gen.Spec) string {
	base := strings.TrimSuffix(s.File, filepath.Ext(s.File))
	return base + ".mtx"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spmv-gen: %v\n", err)
	os.Exit(1)
}

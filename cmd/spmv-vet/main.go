// Command spmv-vet is the repo's contract checker: a `go vet -vettool`
// multichecker running the internal/analysis suite (detpure,
// snapshotonce, atomicfield, errenvelope, hotpathclean) — the
// determinism, snapshot, atomics, and error-envelope invariants the
// serving stack promises but the compiler cannot see.
//
// Two ways to run it:
//
//	go build -o spmv-vet ./cmd/spmv-vet
//	go vet -vettool=$PWD/spmv-vet ./...     # the CI analyze job
//
// or let the binary drive go vet itself:
//
//	go run ./cmd/spmv-vet ./...             # re-execs go vet -vettool=self
//
// The protocol: the go command probes the tool with -V=full (a version
// fingerprint for its action cache) and -flags (the tool's flag
// surface), then invokes it once per compilation unit with the path to
// a vet.cfg file as the sole argument. Exit status 2 signals findings,
// matching x/tools' unitchecker convention.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

const progname = "spmv-vet"

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-flags":
			// No tool-specific flags: the go command forwards none.
			fmt.Println("[]")
			return
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := analysis.RunUnit(args[0], analysis.All(), os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		if n > 0 {
			os.Exit(2)
		}
		return
	}
	// Standalone convenience mode: hand the package patterns to go vet
	// with ourselves as the vettool, so one binary serves both CI (which
	// invokes go vet explicitly) and a developer's `go run ./cmd/spmv-vet`.
	selfExec(args)
}

func printVersion() {
	// The go command fingerprints the tool by this line to key its
	// action cache; hashing the executable makes any rebuild a new key.
	var id string
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	if id == "" {
		id = "unknown"
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

func usage() {
	fmt.Printf("usage: %s [packages]   (or: go vet -vettool=%s [packages])\n\nanalyzers:\n", progname, progname)
	for _, a := range analysis.All() {
		fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
	}
}

func selfExec(patterns []string) {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
}

// spmv-serve runs the SpMV serving subsystem as an HTTP service: a matrix
// registry (tuned once per matrix, operators cached), an adaptive batcher
// that coalesces concurrent single-vector requests into fused multi-RHS
// sweeps, and a worker pool sharded over nonzero-balanced row partitions.
//
//	go run ./cmd/spmv-serve [-addr :8707] [-preload FEM/Cantilever:0.05,LP:0.05]
//
// Endpoints:
//
//	POST /v1/matrices          {"suite":"QCD","scale":0.05} | {"rows","cols","entries"} | {"matrix_market"}
//	GET  /v1/matrices          list registered matrices
//	POST /v1/matrices/{id}/mul {"x":[...]} -> {"y":[...]}
//	GET  /v1/stats             JSON counters
//	GET  /metrics              Prometheus-style counters
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8707", "listen address")
	threads := flag.Int("threads", 0, "parallel width of the per-request path (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "sweep pool workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "row shards per fused sweep (0 = workers)")
	maxBatch := flag.Int("max-batch", 8, "widest fused sweep (1 disables batching)")
	window := flag.Duration("batch-window", 200*time.Microsecond, "batch linger window")
	adaptive := flag.Bool("adaptive", true, "skip the linger for lone requests when traffic is sparse")
	maxSweeps := flag.Int("max-concurrent-sweeps", 0, "concurrent sweep limit (0 = workers)")
	preload := flag.String("preload", "", "comma-separated suite matrices to register at startup, name[:scale] each")
	seed := flag.Int64("seed", 1, "generator seed for preloaded matrices")
	flag.Parse()

	cfg := server.DefaultConfig()
	cfg.Threads = *threads
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.MaxBatch = *maxBatch
	cfg.BatchWindow = *window
	cfg.Adaptive = *adaptive
	cfg.MaxConcurrentSweeps = *maxSweeps
	s := server.New(cfg)
	defer s.Close()

	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			name, scale := spec, 0.02
			if i := strings.LastIndex(spec, ":"); i > 0 {
				f, err := strconv.ParseFloat(spec[i+1:], 64)
				if err != nil {
					log.Fatalf("preload %q: %v", spec, err)
				}
				name, scale = spec[:i], f
			}
			info, err := s.RegisterSuite("", name, scale, *seed)
			if err != nil {
				log.Fatalf("preload %q: %v", spec, err)
			}
			log.Printf("preloaded %s as %q: %dx%d, %d nnz, kernel %s, %.1f%% footprint savings",
				name, info.ID, info.Rows, info.Cols, info.NNZ, info.Kernel, 100*info.Savings)
		}
	}

	log.Printf("spmv-serve listening on %s (max-batch %d, window %v, adaptive %v)",
		*addr, cfg.MaxBatch, cfg.BatchWindow, cfg.Adaptive)
	srv := &http.Server{Addr: *addr, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(fmt.Errorf("spmv-serve: %w", err))
	}
}

// spmv-serve runs the SpMV serving subsystem as an HTTP service: a matrix
// registry (tuned once per matrix, operators cached), an adaptive batcher
// that coalesces concurrent single-vector requests into fused multi-RHS
// sweeps, and a worker pool sharded over nonzero-balanced row partitions.
//
// With -members or -peers the server additionally fronts a shard
// coordinator: registering a matrix with "shards": K splits it into
// nonzero-balanced row bands across the member nodes, and Muls against it
// broadcast x and gather the disjoint y bands (replica-aware routing with
// retry and ejection).
//
//	go run ./cmd/spmv-serve [-addr :8707] [-preload FEM/Cantilever:0.05,LP:0.05]
//	go run ./cmd/spmv-serve -members 4 -replicas 2 -preload LP:0.1:4   # in-process fleet
//	go run ./cmd/spmv-serve -peers http://n1:8707,http://n2:8707       # remote fleet
//
// Endpoints:
//
//	POST /v1/matrices          {"suite":"QCD","scale":0.05} | {"rows","cols","entries"} | {"matrix_market"}
//	                           + optional {"shards":4} on a cluster front
//	                           + optional {"symmetric":true|false} (omitted = auto-detect)
//	GET  /v1/matrices          list registered matrices (local and sharded)
//	POST /v1/matrices/{id}/mul {"x":[...]} -> {"y":[...]}
//	GET  /v1/matrices/{id}/tuning online re-tuner state (generation, drift, decisions)
//	POST /v1/matrices/{id}/solve {"method":"cg","b":[...],"tol":1e-8,"max_iters":500} -> session
//	GET  /v1/solve             list resident solver sessions
//	GET  /v1/solve/{sid}       session state + residual history (?wait=2s blocks until done)
//	DELETE /v1/solve/{sid}     cancel and remove a session
//	GET  /v1/stats             JSON counters (+ cluster rollup)
//	GET  /v1/cluster           shard topology
//	GET  /metrics              Prometheus-style counters
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	spmv "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8707", "listen address")
	threads := flag.Int("threads", 0, "parallel width of the per-request path (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "sweep pool workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "row shards per fused sweep (0 = workers)")
	maxBatch := flag.Int("max-batch", 8, "widest fused sweep (1 disables batching)")
	window := flag.Duration("batch-window", 200*time.Microsecond, "batch linger window")
	adaptive := flag.Bool("adaptive", true, "skip the linger for lone requests when traffic is sparse")
	deterministic := flag.Bool("deterministic", true, "topology-invariant numerics: identical bits regardless of batch width or shard count")
	autoSymmetric := flag.Bool("auto-symmetric", true, "serve numerically symmetric matrices from upper-triangle storage (half the matrix stream); per-request \"symmetric\" overrides")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "request body cap, 413 beyond it (0 = 256 MiB); raise on members sharding very large matrices")
	maxSweeps := flag.Int("max-concurrent-sweeps", 0, "concurrent sweep limit (0 = workers)")
	maxSessions := flag.Int("max-sessions", 0, "resident solver-session cap, 429 beyond it (0 = 16)")
	retuneInterval := flag.Duration("retune-interval", 30*time.Second, "online re-tune scan interval; 0 disables workload-aware re-tuning")
	retuneDrift := flag.Float64("retune-drift", server.DefaultRetuneDrift, "fused-width drift (1 - min/max) that triggers a re-tune evaluation")
	members := flag.Int("members", 0, "in-process shard member nodes (forms a cluster; for demos and smoke tests)")
	peers := flag.String("peers", "", "comma-separated member base URLs (http://host:port) forming a cluster")
	replicas := flag.Int("replicas", 1, "member replicas per shard band")
	ejectAfter := flag.Int("eject-after", 3, "consecutive member failures before ejection from routing")
	preload := flag.String("preload", "", "comma-separated suite matrices to register at startup, name[:scale[:shards]] each")
	seed := flag.Int64("seed", 1, "generator seed for preloaded matrices")
	flag.Parse()

	cfg := server.DefaultConfig()
	cfg.Threads = *threads
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.MaxBatch = *maxBatch
	cfg.BatchWindow = *window
	cfg.Adaptive = *adaptive
	cfg.Deterministic = *deterministic
	cfg.AutoSymmetric = *autoSymmetric
	cfg.MaxBodyBytes = *maxBodyBytes
	cfg.MaxConcurrentSweeps = *maxSweeps
	cfg.MaxSessions = *maxSessions
	cfg.RetuneInterval = *retuneInterval
	cfg.RetuneDrift = *retuneDrift
	s := server.New(cfg)
	defer s.Close()

	var transports []server.Transport
	for i := 0; i < *members; i++ {
		ms := server.New(cfg)
		defer ms.Close()
		transports = append(transports, server.NewLocalTransport(fmt.Sprintf("local%d", i), ms))
	}
	if *peers != "" {
		for _, u := range strings.Split(*peers, ",") {
			transports = append(transports, server.NewHTTPTransport(strings.TrimSpace(u), nil))
		}
	}
	if len(transports) > 0 {
		cluster, err := server.NewCluster(transports, server.ClusterConfig{
			Replicas: *replicas, EjectAfter: *ejectAfter,
		})
		if err != nil {
			log.Fatal(err)
		}
		s.AttachCluster(cluster)
		for _, m := range cluster.Members() {
			log.Printf("cluster member %s", m.Name)
		}
	}

	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			name, scale, nshards, err := parsePreload(spec)
			if err != nil {
				log.Fatalf("preload %q: %v", spec, err)
			}
			if nshards >= 2 {
				c := s.Cluster()
				if c == nil {
					log.Fatalf("preload %q: %d shards requested but no -members/-peers", spec, nshards)
				}
				m, err := spmv.GenerateSuite(name, scale, *seed)
				if err != nil {
					log.Fatalf("preload %q: %v", spec, err)
				}
				info, err := c.RegisterSharded("", name, m, nshards)
				if err != nil {
					log.Fatalf("preload %q: %v", spec, err)
				}
				log.Printf("preloaded %s as %q: %dx%d, %d nnz, %d shards x %d replicas",
					name, info.ID, info.Rows, info.Cols, info.NNZ, info.Shards, info.Replicas)
				continue
			}
			info, err := s.RegisterSuite("", name, scale, *seed)
			if err != nil {
				log.Fatalf("preload %q: %v", spec, err)
			}
			log.Printf("preloaded %s as %q: %dx%d, %d nnz, kernel %s, %.1f%% footprint savings",
				name, info.ID, info.Rows, info.Cols, info.NNZ, info.Kernel, 100*info.Savings)
		}
	}

	log.Printf("spmv-serve listening on %s (max-batch %d, window %v, adaptive %v, deterministic %v, retune %v)",
		*addr, cfg.MaxBatch, cfg.BatchWindow, cfg.Adaptive, cfg.Deterministic, cfg.RetuneInterval)
	srv := &http.Server{Addr: *addr, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(fmt.Errorf("spmv-serve: %w", err))
	}
}

// parsePreload splits one name[:scale[:shards]] preload spec. Suite names
// contain "/" but never ":".
func parsePreload(spec string) (name string, scale float64, shards int, err error) {
	parts := strings.Split(spec, ":")
	name, scale = parts[0], 0.02
	if len(parts) >= 2 {
		if scale, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return "", 0, 0, err
		}
	}
	if len(parts) >= 3 {
		if shards, err = strconv.Atoi(parts[2]); err != nil {
			return "", 0, 0, err
		}
	}
	if len(parts) > 3 {
		return "", 0, 0, fmt.Errorf("want name[:scale[:shards]]")
	}
	return name, scale, shards, nil
}

// spmv-serve runs the SpMV serving subsystem as an HTTP service: a matrix
// registry (tuned once per matrix, operators cached), an adaptive batcher
// that coalesces concurrent single-vector requests into fused multi-RHS
// sweeps, and a worker pool sharded over nonzero-balanced row partitions.
//
// With -members or -peers the server additionally fronts a shard
// coordinator: registering a matrix with "shards": K splits it into
// nonzero-balanced row bands across the member nodes, and Muls against it
// broadcast x and gather the disjoint y bands (replica-aware routing with
// retry and ejection).
//
//	go run ./cmd/spmv-serve [-addr :8707] [-preload FEM/Cantilever:0.05,LP:0.05]
//	go run ./cmd/spmv-serve -members 4 -replicas 2 -preload LP:0.1:4   # in-process fleet
//	go run ./cmd/spmv-serve -members 3 -replicas 2 -route-policy least-loaded -rebalance-skew 0.9
//	go run ./cmd/spmv-serve -peers http://n1:8707,http://n2:8707       # remote fleet
//	go run ./cmd/spmv-serve -log-format json -log-level debug -pprof-addr :6060
//	go run ./cmd/spmv-serve -sched -admit-bytes-per-sec 2e9 -tenants 'acme:5e8,batch:1e8:3e8'
//
// Endpoints:
//
//	POST /v1/matrices          {"suite":"QCD","scale":0.05} | {"rows","cols","entries"} | {"matrix_market"}
//	                           + optional {"shards":4} on a cluster front
//	                           + optional {"symmetric":true|false} (omitted = auto-detect)
//	GET  /v1/matrices          list registered matrices (local and sharded)
//	POST /v1/matrices/{id}/mul {"x":[...]} -> {"y":[...]}
//	                           + optional {"tenant":"acme","class":"latency|standard|bulk","deadline_ms":250}
//	GET  /v1/matrices/{id}/tuning online re-tuner state + measured-vs-modeled roofline
//	POST /v1/matrices/{id}/solve {"method":"cg","b":[...],"tol":1e-8,"max_iters":500} -> session
//	                           + optional {"tenant":"acme","class":"bulk"}
//	GET  /v1/solve             list resident solver sessions
//	GET  /v1/solve/{sid}       session state + residual history (?wait=2s blocks until done)
//	DELETE /v1/solve/{sid}     cancel and remove a session
//	GET  /v1/stats             JSON counters + latency percentiles (+ admission/fairness, cluster rollup)
//	GET  /v1/cluster           shard topology
//	GET  /v1/traces            sampled request traces (?format=chrome for trace_event JSON)
//	GET  /v1/healthz           liveness
//	GET  /v1/buildinfo         module, version, Go version, VCS revision
//	GET  /metrics              Prometheus text exposition (counters + latency histograms)
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	spmv "repro"
	"repro/internal/sched"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8707", "listen address")
	threads := flag.Int("threads", 0, "parallel width of the per-request path (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "sweep pool workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "row shards per fused sweep (0 = workers)")
	maxBatch := flag.Int("max-batch", 8, "widest fused sweep (1 disables batching)")
	window := flag.Duration("batch-window", 200*time.Microsecond, "batch linger window")
	adaptive := flag.Bool("adaptive", true, "skip the linger for lone requests when traffic is sparse")
	deterministic := flag.Bool("deterministic", true, "topology-invariant numerics: identical bits regardless of batch width or shard count")
	autoSymmetric := flag.Bool("auto-symmetric", true, "serve numerically symmetric matrices from upper-triangle storage (half the matrix stream); per-request \"symmetric\" overrides")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "request body cap, 413 beyond it (0 = 256 MiB); raise on members sharding very large matrices")
	maxSweeps := flag.Int("max-concurrent-sweeps", 0, "concurrent sweep limit (0 = workers)")
	maxSessions := flag.Int("max-sessions", 0, "resident solver-session cap, 429 beyond it (0 = 16)")
	retuneInterval := flag.Duration("retune-interval", 30*time.Second, "online re-tune scan interval; 0 disables workload-aware re-tuning")
	retuneDrift := flag.Float64("retune-drift", server.DefaultRetuneDrift, "fused-width drift (1 - min/max) that triggers a re-tune evaluation")
	recompactThreshold := flag.Float64("recompact-threshold", server.DefaultRecompactThreshold, "overlay-to-matrix modeled-bytes ratio that triggers background delta recompaction (negative disables)")
	members := flag.Int("members", 0, "in-process shard member nodes (forms a cluster; for demos and smoke tests)")
	peers := flag.String("peers", "", "comma-separated member base URLs (http://host:port) forming a cluster")
	replicas := flag.Int("replicas", 1, "member replicas per shard band")
	ejectAfter := flag.Int("eject-after", 3, "consecutive member failures before ejection from routing")
	routePolicy := flag.String("route-policy", "round-robin", "replica routing policy: round-robin, least-loaded, weighted, or affinity")
	probeInterval := flag.Duration("probe-interval", server.DefaultProbeInterval, "base backoff before an ejected member's half-open recovery probe (doubles per failed probe, capped at 30s)")
	rebalanceSkew := flag.Float64("rebalance-skew", 0, "Jain fairness threshold on per-member served bytes below which row bands are re-split online (0 disables)")
	preload := flag.String("preload", "", "comma-separated suite matrices to register at startup, name[:scale[:shards]] each")
	seed := flag.Int64("seed", 1, "generator seed for preloaded matrices")
	obsSample := flag.Int("obs-sample", server.DefaultObsSample, "trace 1 in N requests into the /v1/traces ring; 0 disables the observability layer entirely")
	obsRing := flag.Int("obs-ring", server.DefaultObsRing, "sampled-trace ring capacity")
	rooflineGBs := flag.Float64("roofline-gbs", 0, "sustained DRAM bandwidth reference for roofline attribution, GB/s (0 = the paper's AMD X2 socket, ~6.6)")
	schedOn := flag.Bool("sched", false, "enable the SLO class scheduler (priority + SJF + aging batch formation)")
	defaultClass := flag.String("default-class", "standard", "SLO class for requests that do not name one: latency, standard, or bulk")
	admitRate := flag.Float64("admit-bytes-per-sec", 0, "default per-tenant admission rate in modeled DRAM bytes/s (0 = unmetered)")
	admitBurst := flag.Int64("admit-burst", 0, "default per-tenant admission burst in modeled bytes (0 = 2s at the rate)")
	schedAging := flag.Duration("sched-aging", 0, "queue wait that promotes a request one SLO class, preventing bulk starvation (0 = 100ms)")
	tenants := flag.String("tenants", "", "per-tenant admission overrides, name:bytes_per_sec[:burst] comma-separated")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug logs every request)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables); keep it off the public listener")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmv-serve:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	cfg := server.DefaultConfig()
	cfg.Threads = *threads
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.MaxBatch = *maxBatch
	cfg.BatchWindow = *window
	cfg.Adaptive = *adaptive
	cfg.Deterministic = *deterministic
	cfg.AutoSymmetric = *autoSymmetric
	cfg.MaxBodyBytes = *maxBodyBytes
	cfg.MaxConcurrentSweeps = *maxSweeps
	cfg.MaxSessions = *maxSessions
	cfg.RetuneInterval = *retuneInterval
	cfg.RetuneDrift = *retuneDrift
	cfg.RecompactThreshold = *recompactThreshold
	cfg.ObsSample = *obsSample
	cfg.ObsRing = *obsRing
	cfg.RooflineGBs = *rooflineGBs
	cfg.Logger = logger
	cfg.Sched, err = buildSchedConfig(*schedOn, *defaultClass, *admitRate, *admitBurst, *schedAging, *tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmv-serve:", err)
		os.Exit(2)
	}
	s := server.New(cfg)
	defer s.Close()

	var transports []server.Transport
	// Admission and scheduling run at the front; in-process members serve
	// the cluster's internal shard traffic unmetered.
	mcfg := cfg
	mcfg.Sched = sched.Config{}
	for i := 0; i < *members; i++ {
		ms := server.New(mcfg)
		defer ms.Close()
		transports = append(transports, server.NewLocalTransport(fmt.Sprintf("local%d", i), ms))
	}
	if *peers != "" {
		for _, u := range strings.Split(*peers, ",") {
			transports = append(transports, server.NewHTTPTransport(strings.TrimSpace(u), nil))
		}
	}
	if len(transports) > 0 {
		policy, err := server.ParseRoutePolicy(*routePolicy)
		if err != nil {
			fatal(logger, "bad -route-policy", err)
		}
		cluster, err := server.NewCluster(transports, server.ClusterConfig{
			Replicas: *replicas, EjectAfter: *ejectAfter,
			Policy:        policy,
			ProbeInterval: *probeInterval,
			RebalanceSkew: *rebalanceSkew,
		})
		if err != nil {
			fatal(logger, "cluster setup failed", err)
		}
		s.AttachCluster(cluster)
		for _, m := range cluster.Members() {
			logger.Info("cluster member attached", slog.String("member", m.Name))
		}
		logger.Info("cluster routing configured",
			slog.String("policy", string(policy)),
			slog.Duration("probe_interval", *probeInterval),
			slog.Float64("rebalance_skew", *rebalanceSkew))
	}

	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			if err := preloadOne(logger, s, spec, *seed); err != nil {
				fatal(logger, "preload failed", err, slog.String("spec", spec))
			}
		}
	}

	if *pprofAddr != "" {
		// DefaultServeMux carries the pprof handlers (blank import above);
		// the API listener uses its own mux, so profiles stay off it.
		go func() {
			logger.Info("pprof listening", slog.String("addr", *pprofAddr))
			psrv := &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
			if err := psrv.ListenAndServe(); err != nil {
				logger.Error("pprof server exited", slog.Any("err", err))
			}
		}()
	}

	logger.Info("spmv-serve listening",
		slog.String("addr", *addr),
		slog.Int("max_batch", cfg.MaxBatch),
		slog.Duration("batch_window", cfg.BatchWindow),
		slog.Bool("adaptive", cfg.Adaptive),
		slog.Bool("deterministic", cfg.Deterministic),
		slog.Duration("retune_interval", cfg.RetuneInterval),
		slog.Int("obs_sample", cfg.ObsSample),
		slog.Bool("sched", cfg.Sched.Active()),
		slog.Bool("admission", cfg.Sched.AdmissionControlled()))
	srv := &http.Server{Addr: *addr, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		fatal(logger, "listener exited", err)
	}
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func fatal(logger *slog.Logger, msg string, err error, attrs ...any) {
	logger.Error(msg, append([]any{slog.Any("err", err)}, attrs...)...)
	os.Exit(1)
}

// buildSchedConfig assembles the admission/scheduling config from its
// flags. Any tenant override or a default rate implies admission even
// without -sched; -sched alone enables class scheduling unmetered.
func buildSchedConfig(on bool, defaultClass string, rate float64, burst int64, aging time.Duration, tenants string) (sched.Config, error) {
	cfg := sched.Config{
		Enabled:     on,
		BytesPerSec: rate,
		Burst:       burst,
		Aging:       aging,
	}
	class, err := sched.ParseClass(defaultClass)
	if err != nil {
		return sched.Config{}, fmt.Errorf("-default-class: %w", err)
	}
	cfg.DefaultClass = class
	if tenants != "" {
		cfg.Tenants = make(map[string]sched.TenantLimit)
		for _, spec := range strings.Split(tenants, ",") {
			name, limit, err := parseTenant(strings.TrimSpace(spec))
			if err != nil {
				return sched.Config{}, fmt.Errorf("-tenants %q: %w", spec, err)
			}
			cfg.Tenants[name] = limit
		}
	}
	return cfg, nil
}

// parseTenant splits one name:bytes_per_sec[:burst] tenant spec.
func parseTenant(spec string) (string, sched.TenantLimit, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
		return "", sched.TenantLimit{}, fmt.Errorf("want name:bytes_per_sec[:burst]")
	}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || rate < 0 {
		return "", sched.TenantLimit{}, fmt.Errorf("bad rate %q", parts[1])
	}
	limit := sched.TenantLimit{BytesPerSec: rate}
	if len(parts) == 3 {
		burst, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || burst < 0 {
			return "", sched.TenantLimit{}, fmt.Errorf("bad burst %q", parts[2])
		}
		limit.Burst = int64(burst)
	}
	return parts[0], limit, nil
}

// preloadOne registers one name[:scale[:shards]] preload spec.
func preloadOne(logger *slog.Logger, s *server.Server, spec string, seed int64) error {
	name, scale, nshards, err := parsePreload(spec)
	if err != nil {
		return err
	}
	if nshards >= 2 {
		c := s.Cluster()
		if c == nil {
			return fmt.Errorf("%d shards requested but no -members/-peers", nshards)
		}
		m, err := spmv.GenerateSuite(name, scale, seed)
		if err != nil {
			return err
		}
		info, err := c.RegisterSharded("", name, m, nshards)
		if err != nil {
			return err
		}
		logger.Info("preloaded sharded matrix",
			slog.String("suite", name), slog.String("matrix", info.ID),
			slog.Int("rows", info.Rows), slog.Int("cols", info.Cols),
			slog.Int64("nnz", info.NNZ),
			slog.Int("shards", info.Shards), slog.Int("replicas", info.Replicas))
		return nil
	}
	info, err := s.RegisterSuite("", name, scale, seed)
	if err != nil {
		return err
	}
	logger.Info("preloaded matrix",
		slog.String("suite", name), slog.String("matrix", info.ID),
		slog.Int("rows", info.Rows), slog.Int("cols", info.Cols),
		slog.Int64("nnz", info.NNZ), slog.String("kernel", info.Kernel),
		slog.Float64("footprint_savings", info.Savings))
	return nil
}

// parsePreload splits one name[:scale[:shards]] preload spec. Suite names
// contain "/" but never ":".
func parsePreload(spec string) (name string, scale float64, shards int, err error) {
	parts := strings.Split(spec, ":")
	name, scale = parts[0], 0.02
	if len(parts) >= 2 {
		if scale, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return "", 0, 0, err
		}
	}
	if len(parts) >= 3 {
		if shards, err = strconv.Atoi(parts[2]); err != nil {
			return "", 0, 0, err
		}
	}
	if len(parts) > 3 {
		return "", 0, 0, fmt.Errorf("want name[:scale[:shards]]")
	}
	return name, scale, shards, nil
}

// Command spmv-tune prints the auto-tuner's decisions for a matrix: the
// per-cache-block choice of format, register-block shape, and index width,
// together with footprint accounting against plain CSR — the §4.2 one-pass
// heuristic, made inspectable.
//
// Usage:
//
//	spmv-tune -matrix FEM/Cantilever [-scale 0.05] [-seed 7] [-file m.mtx]
//	          [-no-rb] [-no-cb] [-no-16bit] [-cache-kb 512] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/tune"
)

func main() {
	name := flag.String("matrix", "FEM/Cantilever", "suite matrix name (see spmv-bench table3)")
	file := flag.String("file", "", "MatrixMarket file to tune instead of a generated matrix")
	scale := flag.Float64("scale", 0.05, "generator scale factor")
	seed := flag.Int64("seed", 7, "generator seed")
	noRB := flag.Bool("no-rb", false, "disable register blocking")
	noCB := flag.Bool("no-cb", false, "disable cache/TLB blocking")
	no16 := flag.Bool("no-16bit", false, "disable 16-bit index reduction")
	cacheKB := flag.Int64("cache-kb", 512, "cache budget for blocking (KiB)")
	threads := flag.Int("threads", 1, "tune per-thread blocks for this many threads")
	flag.Parse()

	coo, err := load(*file, *name, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	csr, err := matrix.NewCSR[uint32](coo)
	if err != nil {
		fatal(err)
	}

	opt := tune.DefaultOptions()
	opt.CacheBudgetBytes = *cacheKB << 10
	if *noRB {
		opt.RegisterBlock = false
		opt.AllowBCOO = false
	}
	if *noCB {
		opt.CacheBlock = false
		opt.TLBBlock = false
	}
	if *no16 {
		opt.ReduceIndices = false
	}

	st := coo.ComputeStats()
	fmt.Printf("matrix: %s  (%d x %d, %d nonzeros, %.1f nnz/row, %d empty rows)\n\n",
		displayName(*file, *name), st.Rows, st.Cols, st.NNZ, st.NNZPerRow, st.EmptyRows)

	if *threads > 1 {
		_, results, err := tune.TuneParallel(csr, opt, *threads, 2)
		if err != nil {
			fatal(err)
		}
		for i, res := range results {
			fmt.Printf("--- thread %d ---\n", i)
			printResult(res)
		}
		return
	}
	res, err := tune.Tune(csr, opt)
	if err != nil {
		fatal(err)
	}
	printResult(res)
}

func load(file, name string, scale float64, seed int64) (*matrix.COO, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mmio.Read(f)
	}
	return gen.GenerateByName(name, scale, seed)
}

func displayName(file, name string) string {
	if file != "" {
		return file
	}
	return name
}

func printResult(res *tune.Result) {
	fmt.Printf("%-8s %-8s %-10s %-6s %-6s %10s %8s %6s\n",
		"rowOff", "colOff", "size", "format", "shape", "footprint", "idx", "fill")
	for _, d := range res.Decisions {
		fmt.Printf("%-8d %-8d %-10s %-6s %-6s %10d %8d %6.2f\n",
			d.RowOff, d.ColOff, fmt.Sprintf("%dx%d", d.Rows, d.Cols),
			d.Format, d.Shape, d.Footprint, d.IndexBits, d.Fill)
	}
	fmt.Printf("\ntotal footprint : %d bytes (%.2f bytes/nonzero)\n",
		res.TotalFootprint, bytesPerNNZ(res))
	fmt.Printf("CSR32 baseline  : %d bytes\n", res.BaselineFootprint)
	fmt.Printf("savings         : %.1f%%\n\n", 100*res.Savings())
}

func bytesPerNNZ(res *tune.Result) float64 {
	var nnz int64
	for _, d := range res.Decisions {
		nnz += d.NNZ
	}
	if nnz == 0 {
		return 0
	}
	return float64(res.TotalFootprint) / float64(nnz)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spmv-tune: %v\n", err)
	os.Exit(1)
}

// Command spmv-bench regenerates the paper's tables and figures from the
// synthetic suite, the auto-tuner, the baselines, and the platform model.
//
// Usage:
//
//	spmv-bench [-scale 0.1] [-seed 7] [-csv] [-experiment all]
//
// Experiments: table1 table2 table3 table4 figure1-amd figure1-clovertown
// figure1-niagara figure1-ps3 figure1-blade figure2a figure2b speedups all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/machine"
)

func main() {
	scale := flag.Float64("scale", 0.1, "matrix scale factor in (0,1]; 1.0 = paper dimensions")
	seed := flag.Int64("seed", 7, "generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	chart := flag.Bool("chart", false, "render figures as ASCII bar charts (like the paper's plots)")
	experiment := flag.String("experiment", "all", "which experiment to run (see doc comment)")
	flag.Parse()

	r := bench.NewRunner(*scale, *seed)
	tables, err := run(r, *experiment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmv-bench: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		var renderErr error
		switch {
		case *csv:
			renderErr = t.RenderCSV(os.Stdout)
		case *chart:
			renderErr = (&bench.Chart{Table: t}).Render(os.Stdout)
		default:
			renderErr = t.Render(os.Stdout)
		}
		if renderErr != nil {
			fmt.Fprintf(os.Stderr, "spmv-bench: %v\n", renderErr)
			os.Exit(1)
		}
	}
}

func run(r *bench.Runner, experiment string) ([]*bench.Table, error) {
	mk := map[string]func() (*bench.Table, error){
		"table1": func() (*bench.Table, error) { return bench.Table1(), nil },
		"table2": func() (*bench.Table, error) { return bench.Table2(), nil },
		"table3": r.Table3,
		"table4": r.Table4,
		"figure1-amd": func() (*bench.Table, error) {
			return r.Figure1(machine.AMDX2())
		},
		"figure1-clovertown": func() (*bench.Table, error) {
			return r.Figure1(machine.Clovertown())
		},
		"figure1-niagara": func() (*bench.Table, error) {
			return r.Figure1(machine.Niagara())
		},
		"figure1-ps3": func() (*bench.Table, error) {
			return r.Figure1(machine.CellPS3())
		},
		"figure1-blade": func() (*bench.Table, error) {
			return r.Figure1(machine.CellBlade())
		},
		"figure2a": r.Figure2a,
		"figure2b": r.Figure2b,
		"speedups": r.Speedups,
	}
	order := []string{
		"table1", "table2", "table3", "table4",
		"figure1-amd", "figure1-clovertown", "figure1-niagara",
		"figure1-ps3", "figure1-blade",
		"figure2a", "figure2b", "speedups",
	}
	if experiment == "all" {
		var out []*bench.Table
		for _, name := range order {
			t, err := mk[name]()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			out = append(out, t)
		}
		return out, nil
	}
	f, ok := mk[experiment]
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (want one of %v or all)", experiment, order)
	}
	t, err := f()
	if err != nil {
		return nil, err
	}
	return []*bench.Table{t}, nil
}

// Cross-format differential property test: every compile path — CSR (both
// index widths), register-blocked BCSR, block-coordinate BCOO, symmetric
// SymCSR, cache-blocked composites, and row-parallel compositions of all
// of them — must agree with an independent naive triplet reference, at
// every multi-RHS width and thread count the serving layer exercises.
//
// Agreement comes in two strengths:
//
//   - bitwise for the deterministic CSR family (serial/parallel CSR at
//     either index width, MultiVec, and the wide kernels over CSR): these
//     all accumulate each row strictly in column order, so their bits are
//     the reference's bits — the property the serving layer's
//     Deterministic mode and the re-tuner's bit-preserving promotions
//     stand on;
//   - ULP-bounded for reassociating paths (register/cache blocking,
//     symmetry): |y - ref| <= ~nnz_row * eps * sum|a_ij x_j| per row.
//
// Additionally every wide kernel must be width-invariant: lane v of a
// width-k sweep reproduces the width-1 sweep bit for bit.
package spmv_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	spmv "repro"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/matrix/delta"
	"repro/internal/solve"
)

// diffWidths are the fused multi-RHS widths the harness checks.
var diffWidths = []int{1, 4, 8}

// diffThreads are the parallel widths the harness checks.
var diffThreads = []int{1, 2, 4}

// diffCase is one generated matrix with its per-lane inputs and
// references.
type diffCase struct {
	name string
	m    *spmv.Matrix
	coo  *matrix.COO
	sym  bool // numerically symmetric (safe for CompileSymmetric)
}

// diffCases builds the structural zoo: varied density, banded, symmetric,
// empty rows and columns, and a near-empty matrix.
func diffCases(t *testing.T) []diffCase {
	t.Helper()
	n := 240
	nnz := 3200
	if testing.Short() {
		n, nnz = 120, 1200
	}
	cases := []diffCase{
		{name: "random-sparse", coo: randomCOO(t, n, n-17, nnz/4, 1, false)},
		{name: "random-dense", coo: randomCOO(t, n/2, n/2, nnz, 2, false)},
		{name: "banded", coo: bandedCOO(t, n, 6, 3)},
		{name: "empty-rows-cols", coo: stripedCOO(t, n, n, nnz/4, 4)},
		{name: "duplicates", coo: duplicateCOO(t, n/2, 5)},
		{name: "near-empty", coo: sparseDiagCOO(t, n)},
	}
	for i := range cases {
		cases[i].m = cooToMatrix(t, cases[i].coo)
	}
	// Symmetric twin of the banded case: exactly symmetric by
	// construction, so SymCSR compiles.
	symM, err := spmv.Symmetrize(cooToMatrix(t, bandedCOO(t, n, 5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	symCOO := matrix.NewCOO(n, n)
	symM.Entries(func(i, j int, v float64) { _ = symCOO.Append(i, j, v) })
	cases = append(cases, diffCase{name: "symmetric", m: symM, coo: symCOO, sym: true})
	return cases
}

func randomCOO(t *testing.T, rows, cols, nnz int, seed int64, posOnly bool) *matrix.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		v := rng.NormFloat64()
		if posOnly {
			v = math.Abs(v) + 0.1
		}
		if err := coo.Append(rng.Intn(rows), rng.Intn(cols), v); err != nil {
			t.Fatal(err)
		}
	}
	return coo
}

func bandedCOO(t *testing.T, n, halfBW int, seed int64) *matrix.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := i - halfBW; j <= i+halfBW; j++ {
			if j >= 0 && j < n {
				if err := coo.Append(i, j, rng.NormFloat64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return coo
}

// stripedCOO populates only every strideth row and column, leaving the
// rest empty — the empty-row/empty-column stress BCOO exists for.
func stripedCOO(t *testing.T, rows, cols, nnz int, stride int) *matrix.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	coo := matrix.NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		i := (rng.Intn(rows / stride)) * stride
		j := (rng.Intn(cols / stride)) * stride
		if err := coo.Append(i, j, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	return coo
}

// duplicateCOO repeats every coordinate several times; compile-time
// canonicalization must sum them in insertion order on every path.
func duplicateCOO(t *testing.T, n int, seed int64) *matrix.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO(n, n)
	for k := 0; k < 4*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		for d := 0; d < 3; d++ {
			if err := coo.Append(i, j, rng.NormFloat64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return coo
}

func sparseDiagCOO(t *testing.T, n int) *matrix.COO {
	t.Helper()
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i += 37 {
		if err := coo.Append(i, i, float64(i+1)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	return coo
}

func cooToMatrix(t *testing.T, coo *matrix.COO) *spmv.Matrix {
	t.Helper()
	m := spmv.NewMatrix(coo.R, coo.C)
	for k := range coo.Val {
		if err := m.Set(int(coo.RowIdx[k]), int(coo.ColIdx[k]), coo.Val[k]); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// refMul is the independent naive triplet reference: canonicalize the
// triplets exactly as compile time does (stable row-major/column sort,
// duplicates summed in insertion order), then accumulate each row's sum
// strictly in column order. It returns y plus a per-row error tolerance
// ~4*(nnz_row+4)*eps*sum|a_ij x_j| for the reassociating paths.
func refMul(coo *matrix.COO, x []float64) (y, tol []float64) {
	type ent struct {
		i, j int
		v    float64
	}
	ents := make([]ent, len(coo.Val))
	for k := range coo.Val {
		ents[k] = ent{int(coo.RowIdx[k]), int(coo.ColIdx[k]), coo.Val[k]}
	}
	sort.SliceStable(ents, func(a, b int) bool {
		if ents[a].i != ents[b].i {
			return ents[a].i < ents[b].i
		}
		return ents[a].j < ents[b].j
	})
	// Sum duplicates in their (preserved) insertion order.
	canon := ents[:0]
	for _, e := range ents {
		if n := len(canon); n > 0 && canon[n-1].i == e.i && canon[n-1].j == e.j {
			canon[n-1].v += e.v
			continue
		}
		canon = append(canon, e)
	}
	y = make([]float64, coo.R)
	tol = make([]float64, coo.R)
	abs := make([]float64, coo.R)
	rowNNZ := make([]int, coo.R)
	for _, e := range canon {
		t := e.v * x[e.j]
		y[e.i] += t
		abs[e.i] += math.Abs(t)
		rowNNZ[e.i]++
	}
	const eps = 2.220446049250313e-16
	for i := range tol {
		tol[i] = 4 * float64(rowNNZ[i]+4) * eps * abs[i]
	}
	return y, tol
}

func laneVectors(cols, width int, seed int64) [][]float64 {
	xs := make([][]float64, width)
	for v := range xs {
		rng := rand.New(rand.NewSource(seed + int64(v)))
		xs[v] = make([]float64, cols)
		for i := range xs[v] {
			xs[v][i] = rng.NormFloat64()
		}
	}
	return xs
}

// checkBitwise asserts got matches want bit for bit.
func checkBitwise(t *testing.T, path string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", path, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: y[%d] = %x, want %x (not bitwise identical)",
				path, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// checkBounded asserts got matches want within the per-row reassociation
// tolerance.
func checkBounded(t *testing.T, path string, got, want, tol []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", path, len(got), len(want))
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > tol[i] {
			t.Fatalf("%s: y[%d] off by %g (tolerance %g)", path, i, d, tol[i])
		}
	}
}

// wideLanes runs a wide kernel over interleaved lane vectors and returns
// the de-interleaved per-lane results.
func wideLanes(t *testing.T, w kernel.Wide, rows int, xs [][]float64) [][]float64 {
	t.Helper()
	xBlock, err := kernel.Interleave(xs)
	if err != nil {
		t.Fatal(err)
	}
	yBlock := make([]float64, rows*len(xs))
	if err := w.MulAddBlock(yBlock, xBlock); err != nil {
		t.Fatal(err)
	}
	ys, err := kernel.Deinterleave(yBlock, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	return ys
}

// TestDifferentialCSRFamily checks the deterministic family bitwise:
// serial and parallel CSR at both index widths, the CSR multi-RHS views,
// and the wide kernels over CSR — across widths 1/4/8 and threads 1/2/4.
func TestDifferentialCSRFamily(t *testing.T) {
	for _, tc := range diffCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			_, cols := tc.m.Dims()
			rows, _ := tc.m.Dims()
			xs := laneVectors(cols, 8, 77)
			refs := make([][]float64, len(xs))
			for v := range xs {
				refs[v], _ = refMul(tc.coo, xs[v])
			}

			opts16 := spmv.NaiveOptions()
			opts16.ReduceIndices = true
			for _, threads := range diffThreads {
				for optName, opt := range map[string]spmv.TuneOptions{"csr32": spmv.NaiveOptions(), "csr16": opts16} {
					op, err := spmv.CompileParallel(tc.m, opt, threads, 1)
					if err != nil {
						t.Fatal(err)
					}
					path := fmt.Sprintf("%s/threads=%d", optName, threads)
					y, err := op.Mul(xs[0])
					if err != nil {
						t.Fatal(err)
					}
					checkBitwise(t, path+"/mul", y, refs[0])

					for _, width := range diffWidths {
						// CSR fallback views (MultiVec).
						mo, err := op.Multi(width)
						if err != nil {
							t.Fatal(err)
						}
						ys, err := mo.MulAll(xs[:width])
						if err != nil {
							t.Fatal(err)
						}
						for v := range ys {
							checkBitwise(t, fmt.Sprintf("%s/multi%d/lane%d", path, width, v), ys[v], refs[v])
						}
						// Tuned wide views — over CSR encodings these must
						// reproduce the same bits (the re-tuner's
						// bit-preserving promotion contract).
						wmo, err := op.WideMulti(width)
						if err != nil {
							t.Fatal(err)
						}
						wys, err := wmo.MulAll(xs[:width])
						if err != nil {
							t.Fatal(err)
						}
						for v := range wys {
							checkBitwise(t, fmt.Sprintf("%s/wide%d/lane%d", path, width, v), wys[v], refs[v])
						}
					}
				}
			}
			_ = rows
		})
	}
}

// TestDifferentialBlockedFormats checks every register-blocked and
// block-coordinate compile path — all shapes × both index widths — plus
// their wide kernels: ULP-bounded against the reference, and bitwise
// width-invariant (lane v of width k == the width-1 sweep).
func TestDifferentialBlockedFormats(t *testing.T) {
	shapes := []matrix.BlockShape{{R: 1, C: 1}, {R: 1, C: 4}, {R: 2, C: 2}, {R: 4, C: 1}, {R: 4, C: 4}}
	if !testing.Short() {
		shapes = append(shapes, matrix.BlockShape{R: 1, C: 2}, matrix.BlockShape{R: 2, C: 1},
			matrix.BlockShape{R: 2, C: 4}, matrix.BlockShape{R: 4, C: 2})
	}
	for _, tc := range diffCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			csr, err := matrix.NewCSR[uint32](tc.coo)
			if err != nil {
				t.Fatal(err)
			}
			xs := laneVectors(csr.C, 8, 99)
			refs := make([][]float64, len(xs))
			tols := make([][]float64, len(xs))
			for v := range xs {
				refs[v], tols[v] = refMul(tc.coo, xs[v])
			}

			var encs []matrix.Format
			for _, shape := range shapes {
				b16, err := matrix.NewBCSR[uint16](csr, shape)
				if err != nil {
					t.Fatal(err)
				}
				b32, err := matrix.NewBCSR[uint32](csr, shape)
				if err != nil {
					t.Fatal(err)
				}
				c16, err := matrix.NewBCOO[uint16](csr, shape)
				if err != nil {
					t.Fatal(err)
				}
				c32, err := matrix.NewBCOO[uint32](csr, shape)
				if err != nil {
					t.Fatal(err)
				}
				encs = append(encs, b16, b32, c16, c32)
			}
			for _, enc := range encs {
				k, err := kernel.Compile(enc)
				if err != nil {
					t.Fatal(err)
				}
				y := make([]float64, csr.R)
				if err := k.MulAdd(y, xs[0]); err != nil {
					t.Fatal(err)
				}
				checkBounded(t, k.Name()+"/muladd", y, refs[0], tols[0])

				base := make(map[int][]float64) // lane -> width-1 wide bits
				for _, width := range diffWidths {
					w, err := kernel.NewWide(enc, width)
					if err != nil {
						t.Fatal(err)
					}
					ys := wideLanes(t, w, csr.R, xs[:width])
					for v := range ys {
						checkBounded(t, fmt.Sprintf("%s/lane%d", w.Name(), v), ys[v], refs[v], tols[v])
						if width == 1 {
							base[v] = ys[v]
						}
					}
					// Width invariance: lane 0 bits never depend on width.
					checkBitwise(t, w.Name()+"/lane0-width-invariance", ys[0], base[0])
				}
			}
		})
	}
}

// TestDifferentialTunedAndCacheBlocked checks the full §4.2 tuner output
// (register + cache + TLB blocking, serial and parallel) and a forced
// cache-blocked encoding, at every width.
func TestDifferentialTunedAndCacheBlocked(t *testing.T) {
	small := spmv.DefaultTuneOptions()
	small.CacheBudgetBytes = 1 << 12 // force cache blocking on tiny matrices
	small.TLBEntries = 8
	configs := map[string]spmv.TuneOptions{
		"tuned-default":      spmv.DefaultTuneOptions(),
		"tuned-cacheblocked": small,
	}
	for _, tc := range diffCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			_, cols := tc.m.Dims()
			xs := laneVectors(cols, 8, 123)
			refs := make([][]float64, len(xs))
			tols := make([][]float64, len(xs))
			for v := range xs {
				refs[v], tols[v] = refMul(tc.coo, xs[v])
			}
			for name, opt := range configs {
				for _, threads := range diffThreads {
					op, err := spmv.CompileParallel(tc.m, opt, threads, 1)
					if err != nil {
						t.Fatal(err)
					}
					path := fmt.Sprintf("%s/threads=%d", name, threads)
					y, err := op.Mul(xs[0])
					if err != nil {
						t.Fatal(err)
					}
					checkBounded(t, path+"/mul", y, refs[0], tols[0])
					for _, width := range diffWidths {
						mo, err := op.WideMulti(width)
						if err != nil {
							t.Fatal(err)
						}
						ys, err := mo.MulAll(xs[:width])
						if err != nil {
							t.Fatal(err)
						}
						for v := range ys {
							checkBounded(t, fmt.Sprintf("%s/wide%d/lane%d", path, width, v), ys[v], refs[v], tols[v])
						}
					}
				}
			}
		})
	}
}

// TestDifferentialSymmetric checks SymCSR: ULP-bounded against the
// reference, bitwise identical across thread counts, and bitwise
// width-invariant per lane — at widths 1/4/8 and threads 1/2/4.
func TestDifferentialSymmetric(t *testing.T) {
	var sym diffCase
	for _, tc := range diffCases(t) {
		if tc.sym {
			sym = tc
		}
	}
	if sym.m == nil {
		t.Fatal("no symmetric case generated")
	}
	rows, cols := sym.m.Dims()
	xs := laneVectors(cols, 8, 321)
	refs := make([][]float64, len(xs))
	tols := make([][]float64, len(xs))
	for v := range xs {
		refs[v], tols[v] = refMul(sym.coo, xs[v])
	}
	var baseline [][]float64 // [lane] width-1 single-thread bits
	for _, threads := range diffThreads {
		op, err := spmv.CompileSymmetricParallel(sym.m, threads)
		if err != nil {
			t.Fatal(err)
		}
		path := fmt.Sprintf("symcsr/threads=%d", threads)
		for _, width := range diffWidths {
			mo, err := op.Multi(width)
			if err != nil {
				t.Fatal(err)
			}
			ys, err := mo.MulAll(xs[:width])
			if err != nil {
				t.Fatal(err)
			}
			for v := range ys {
				checkBounded(t, fmt.Sprintf("%s/width%d/lane%d", path, width, v), ys[v], refs[v], tols[v])
			}
			if baseline == nil {
				baseline = make([][]float64, len(xs))
			}
			for v := range ys {
				if baseline[v] == nil {
					baseline[v] = ys[v]
				} else {
					// One canonical reduction: bits must not depend on
					// thread count or fused width.
					checkBitwise(t, fmt.Sprintf("%s/width%d/lane%d/canonical", path, width, v), ys[v], baseline[v])
				}
			}
		}
	}
	_ = rows
}

// ---- BLAS-1 differential section ------------------------------------
//
// The solver layer (internal/solve) builds CG and power iteration on
// fused BLAS-1 helpers with two reduction modes. Their contracts mirror
// the kernel table above:
//
//   - bitwise in deterministic (ordered-reduction) mode against an
//     independent re-implementation of the canonical summation tree —
//     fixed 1024-element blocks, partials combined in ascending block
//     order — at every thread count;
//   - ULP-bounded in parallel mode against the plain sequential sum
//     (per-thread chunking reassociates the reduction);
//   - element-wise operations (Axpy, Xpay, Scale) bitwise against naive
//     loops at every thread count and in both modes.

// refOrderedDot is the independent reference for the deterministic
// reduction contract. The 1024-element block length is part of the
// published contract (solve.BLAS documentation), re-stated here rather
// than imported so a regression in either side trips the test.
func refOrderedDot(x, y []float64) float64 {
	const block = 1024
	var total float64
	for lo := 0; lo < len(x); lo += block {
		hi := min(lo+block, len(x))
		var partial float64
		for i := lo; i < hi; i++ {
			partial += x[i] * y[i]
		}
		total += partial
	}
	return total
}

var blasThreads = []int{1, 2, 3, 4, 8}

func TestDifferentialBLAS1(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 5, 1023, 1024, 1025, 4096, 65537} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
				y[i] = rng.NormFloat64()
			}
			ordered := refOrderedDot(x, y)
			var seq, absSum float64
			for i := range x {
				seq += x[i] * y[i]
				absSum += math.Abs(x[i] * y[i])
			}
			const eps = 2.220446049250313e-16
			bound := 4 * float64(n+4) * eps * absSum
			for _, threads := range blasThreads {
				det := solve.BLAS{Threads: threads, Deterministic: true}
				if got := det.Dot(x, y); math.Float64bits(got) != math.Float64bits(ordered) {
					t.Fatalf("threads=%d: deterministic Dot %x, reference %x",
						threads, math.Float64bits(got), math.Float64bits(ordered))
				}
				wantNorm := math.Sqrt(refOrderedDot(x, x))
				if got := det.Norm2(x); math.Float64bits(got) != math.Float64bits(wantNorm) {
					t.Fatalf("threads=%d: deterministic Norm2 %x, reference %x",
						threads, math.Float64bits(got), math.Float64bits(wantNorm))
				}
				par := solve.BLAS{Threads: threads}
				if got := par.Dot(x, y); math.Abs(got-seq) > bound {
					t.Fatalf("threads=%d: parallel Dot %g vs sequential %g (bound %g)", threads, got, seq, bound)
				}
				if got := par.Norm2(x); n > 0 && math.Abs(got*got-par.Dot(x, x)) > bound {
					t.Fatalf("threads=%d: parallel Norm2 inconsistent with Dot", threads)
				}

				// Element-wise ops: bitwise against naive loops in both modes.
				const alpha = 1.5625e-2 // exact in binary
				for _, mode := range []solve.BLAS{det, par} {
					naive := append([]float64(nil), y...)
					for i := range naive {
						naive[i] += alpha * x[i]
					}
					got := append([]float64(nil), y...)
					mode.Axpy(alpha, x, got)
					checkBitwise(t, fmt.Sprintf("Axpy/threads=%d/det=%v", threads, mode.Deterministic), got, naive)

					naive = append(naive[:0:0], y...)
					for i := range naive {
						naive[i] = x[i] + alpha*naive[i]
					}
					got = append(got[:0:0], y...)
					mode.Xpay(alpha, x, got)
					checkBitwise(t, fmt.Sprintf("Xpay/threads=%d/det=%v", threads, mode.Deterministic), got, naive)

					naive = append(naive[:0:0], y...)
					for i := range naive {
						naive[i] *= alpha
					}
					got = append(got[:0:0], y...)
					mode.Scale(alpha, got)
					checkBitwise(t, fmt.Sprintf("Scale/threads=%d/det=%v", threads, mode.Deterministic), got, naive)
				}
			}
		})
	}
}

// ---- Delta-overlay differential section -----------------------------
//
// Mutable matrices serve sweeps as (base operator pass + overlay
// overwrite of the dirty rows). The contract extends the CSR-family
// table above across mutation: on the deterministic CSR-family paths,
// the overlay pass must reproduce a from-scratch rebuild of the mutated
// matrix BIT FOR BIT — at every thread count, every fused width, and
// regardless of how the delta stream was split into batches.

// deltaStream builds a deterministic mixed set/add/del op stream over an
// R×C base. Dels target the same coordinate distribution as sets, so a
// fair share of them hit existing entries (including entries earlier
// deltas created).
func deltaStream(rows, cols, n int, seed int64) []delta.Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]delta.Op, 0, n)
	for k := 0; k < n; k++ {
		i, j := int32(rng.Intn(rows)), int32(rng.Intn(cols))
		switch rng.Intn(5) {
		case 0, 1:
			ops = append(ops, delta.Op{Kind: delta.Set, Row: i, Col: j, Val: rng.NormFloat64()})
		case 2, 3:
			ops = append(ops, delta.Op{Kind: delta.Add, Row: i, Col: j, Val: rng.NormFloat64()})
		default:
			ops = append(ops, delta.Op{Kind: delta.Del, Row: i, Col: j})
		}
	}
	return ops
}

// logOver builds a delta log indexing m's stored entries.
func logOver(m *spmv.Matrix) *delta.Log {
	rows, cols := m.Dims()
	return delta.NewLog(rows, cols, func(yield func(i, j int32, v float64)) {
		m.Entries(func(i, j int, v float64) { yield(int32(i), int32(j), v) })
	})
}

// foldToMatrix rebuilds the mutated matrix from the log.
func foldToMatrix(t *testing.T, l *delta.Log, rows, cols int) *spmv.Matrix {
	t.Helper()
	m := spmv.NewMatrix(rows, cols)
	l.Fold(func(i, j int32, v float64) {
		if err := m.Set(int(i), int(j), v); err != nil {
			t.Fatal(err)
		}
	})
	return m
}

// overlayLanes runs one fused sweep the way the serving layer does —
// base multi-operator pass over the interleaved block, then the overlay
// overwrite of dirty rows — and returns the de-interleaved lanes.
func overlayLanes(t *testing.T, mo *spmv.MultiOperator, ov *delta.Overlay, rows int, xs [][]float64) [][]float64 {
	t.Helper()
	width := len(xs)
	xBlock, err := kernel.Interleave(xs)
	if err != nil {
		t.Fatal(err)
	}
	yBlock := make([]float64, rows*width)
	if err := mo.MulAddBlock(yBlock, xBlock); err != nil {
		t.Fatal(err)
	}
	if err := kernel.OverlayRows(yBlock, xBlock, width, ov.Rows()); err != nil {
		t.Fatal(err)
	}
	ys, err := kernel.Deinterleave(yBlock, width)
	if err != nil {
		t.Fatal(err)
	}
	return ys
}

// TestDifferentialOverlay checks overlay-vs-rebuild bitwise identity on
// both CSR-family multi-RHS views (MultiVec and the wide kernels), over
// the structural zoo, at threads 1/2/4 and widths 1/4/8.
func TestDifferentialOverlay(t *testing.T) {
	nops := 200
	if testing.Short() {
		nops = 80
	}
	for ci, tc := range diffCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			rows, cols := tc.m.Dims()
			l := logOver(tc.m)
			if err := l.Apply(deltaStream(rows, cols, nops, int64(1000+ci))); err != nil {
				t.Fatal(err)
			}
			ov := l.Overlay()
			folded := foldToMatrix(t, l, rows, cols)
			xs := laneVectors(cols, 8, 555)
			for _, threads := range diffThreads {
				base, err := spmv.CompileParallel(tc.m, spmv.NaiveOptions(), threads, 1)
				if err != nil {
					t.Fatal(err)
				}
				rebuilt, err := spmv.CompileParallel(folded, spmv.NaiveOptions(), threads, 1)
				if err != nil {
					t.Fatal(err)
				}
				for _, width := range diffWidths {
					views := map[string]func(op *spmv.Operator) (*spmv.MultiOperator, error){
						"multi": func(op *spmv.Operator) (*spmv.MultiOperator, error) { return op.Multi(width) },
						"wide":  func(op *spmv.Operator) (*spmv.MultiOperator, error) { return op.WideMulti(width) },
					}
					for vn, view := range views {
						bmo, err := view(base)
						if err != nil {
							t.Fatal(err)
						}
						rmo, err := view(rebuilt)
						if err != nil {
							t.Fatal(err)
						}
						got := overlayLanes(t, bmo, ov, rows, xs[:width])
						want, err := rmo.MulAll(xs[:width])
						if err != nil {
							t.Fatal(err)
						}
						for v := range got {
							checkBitwise(t,
								fmt.Sprintf("%s/threads=%d/width=%d/lane%d", vn, threads, width, v),
								got[v], want[v])
						}
					}
				}
			}
		})
	}
}

// TestDifferentialOverlayBatchSplits checks that the overlay — and the
// bits a sweep over it produces — depends only on the total op sequence,
// never on batch boundaries: the same stream applied as one batch,
// per-op batches, and two different chunkings yields byte-identical
// overlay snapshots and bitwise identical sweep results.
func TestDifferentialOverlayBatchSplits(t *testing.T) {
	base := cooToMatrix(t, randomCOO(t, 150, 130, 900, 17, false))
	rows, cols := base.Dims()
	stream := deltaStream(rows, cols, 160, 29)

	apply := func(chunk int) *delta.Log {
		l := logOver(base)
		if chunk <= 0 {
			chunk = len(stream)
		}
		for lo := 0; lo < len(stream); lo += chunk {
			hi := min(lo+chunk, len(stream))
			if err := l.Apply(stream[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}

	ref := apply(0).Overlay()
	xs := laneVectors(cols, 4, 777)
	op, err := spmv.CompileParallel(base, spmv.NaiveOptions(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := op.WideMulti(4)
	if err != nil {
		t.Fatal(err)
	}
	refLanes := overlayLanes(t, mo, ref, rows, xs)

	for _, chunk := range []int{1, 7, 31} {
		ov := apply(chunk).Overlay()
		if ov.Seq() != ref.Seq() || ov.DirtyRows() != ref.DirtyRows() || ov.Entries() != ref.Entries() {
			t.Fatalf("chunk=%d: overlay shape (seq=%d rows=%d entries=%d) != reference (seq=%d rows=%d entries=%d)",
				chunk, ov.Seq(), ov.DirtyRows(), ov.Entries(), ref.Seq(), ref.DirtyRows(), ref.Entries())
		}
		for r, row := range ov.Rows() {
			want := ref.Rows()[r]
			if row.Index != want.Index || len(row.Col) != len(want.Col) {
				t.Fatalf("chunk=%d: dirty row %d shape mismatch", chunk, r)
			}
			for k := range row.Col {
				if row.Col[k] != want.Col[k] || math.Float64bits(row.Val[k]) != math.Float64bits(want.Val[k]) {
					t.Fatalf("chunk=%d: row %d entry %d (%d,%x) != (%d,%x)",
						chunk, row.Index, k, row.Col[k], math.Float64bits(row.Val[k]),
						want.Col[k], math.Float64bits(want.Val[k]))
				}
			}
		}
		lanes := overlayLanes(t, mo, ov, rows, xs)
		for v := range lanes {
			checkBitwise(t, fmt.Sprintf("chunk=%d/lane%d", chunk, v), lanes[v], refLanes[v])
		}
	}
}

// Benchmarks, one per paper table/figure plus host-kernel micro-benches
// and the ablations DESIGN.md calls out.
//
// Two kinds of numbers come out of this file:
//
//   - Benchmark(Table|Figure)... run the experiment harness that
//     regenerates the paper's evaluation artifacts (modeled 2007 hardware;
//     see EXPERIMENTS.md for the resulting tables). Their wall-clock times
//     measure the harness itself, and each reports the headline metric of
//     its artifact (median Gflop/s etc.) as a custom benchmark metric.
//
//   - BenchmarkKernel..., BenchmarkAblation... measure the real Go kernels
//     on the host machine: actual SpMV throughput of the library a user
//     adopts (ns/op, plus effective host Gflop/s).
package spmv_test

import (
	"fmt"
	"strconv"
	"testing"

	spmv "repro"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/partition"
	"repro/internal/tune"
)

// benchScale keeps the modeled experiments fast while preserving shapes.
const benchScale = 0.02

func runner() *bench.Runner { return bench.NewRunner(benchScale, 7) }

// reportMedian extracts a table's "Median" row value for a column and
// reports it as a benchmark metric.
func reportMedian(b *testing.B, t *bench.Table, col, metric string) {
	b.Helper()
	if s, ok := t.Lookup("Median", col); ok {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			b.ReportMetric(v, metric)
		}
	}
}

func BenchmarkTable1_MachineModel(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-table harness benchmarks are skipped in -short mode (like internal/bench)")
	}
	for i := 0; i < b.N; i++ {
		t := bench.Table1()
		if len(t.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable3_Suite(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-table harness benchmarks are skipped in -short mode (like internal/bench)")
	}
	for i := 0; i < b.N; i++ {
		r := runner()
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4_DenseSustained(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-table harness benchmarks are skipped in -short mode (like internal/bench)")
	}
	r := runner()
	var t *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = r.Table4(); err != nil {
			b.Fatal(err)
		}
	}
	if v, ok := t.Lookup("Cell Blade", "GB/s system"); ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			b.ReportMetric(f, "cell-blade-GB/s")
		}
	}
}

func benchFigure1(b *testing.B, m *machine.Machine, col string) {
	b.Helper()
	if testing.Short() {
		b.Skip("paper-table harness benchmarks are skipped in -short mode (like internal/bench)")
	}
	r := runner()
	var t *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = r.Figure1(m); err != nil {
			b.Fatal(err)
		}
	}
	reportMedian(b, t, col, "median-Gflops")
}

func BenchmarkFigure1_AMDX2(b *testing.B) {
	benchFigure1(b, machine.AMDX2(), "2 sockets x 2 cores [*]")
}

func BenchmarkFigure1_Clovertown(b *testing.B) {
	benchFigure1(b, machine.Clovertown(), "2 sockets x 4 cores [*]")
}

func BenchmarkFigure1_Niagara(b *testing.B) {
	benchFigure1(b, machine.Niagara(), "8c x 4t [*]")
}

func BenchmarkFigure1_CellPS3(b *testing.B) {
	benchFigure1(b, machine.CellPS3(), "6 SPEs")
}

func BenchmarkFigure1_CellBlade(b *testing.B) {
	benchFigure1(b, machine.CellBlade(), "16 SPEs")
}

func BenchmarkFigure2a_MedianComparison(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-table harness benchmarks are skipped in -short mode (like internal/bench)")
	}
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2b_PowerEfficiency(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-table harness benchmarks are skipped in -short mode (like internal/bench)")
	}
	r := runner()
	var t *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = r.Figure2b(); err != nil {
			b.Fatal(err)
		}
	}
	if s, ok := t.Lookup("Cell Blade", "Mflop/s per Watt"); ok {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			b.ReportMetric(v, "cell-Mflops/W")
		}
	}
}

func BenchmarkSpeedupClaims(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-table harness benchmarks are skipped in -short mode (like internal/bench)")
	}
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Speedups(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Host kernel micro-benchmarks: the real Go kernels. ---

// hostKernel builds a kernel for a suite matrix and returns it with its
// vectors and flop count.
func hostKernel(b *testing.B, name string, mk func(*matrix.CSR32) (matrix.Format, error)) (kernel.Kernel, []float64, []float64, int64) {
	b.Helper()
	coo, err := gen.GenerateByName(name, 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	csr, err := matrix.NewCSR[uint32](coo)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := mk(csr)
	if err != nil {
		b.Fatal(err)
	}
	k, err := kernel.Compile(enc)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, csr.C)
	for i := range x {
		x[i] = float64(i%7) * 0.25
	}
	y := make([]float64, csr.R)
	return k, y, x, 2 * csr.NNZ()
}

func benchMulAdd(b *testing.B, k kernel.Kernel, y, x []float64, flops int64) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.MulAdd(y, x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	secPerOp := b.Elapsed().Seconds() / float64(b.N)
	if secPerOp > 0 {
		b.ReportMetric(float64(flops)/secPerOp/1e9, "host-Gflops")
	}
}

func BenchmarkKernelCSR_FEMCantilever(b *testing.B) {
	k, y, x, fl := hostKernel(b, "FEM/Cantilever", func(c *matrix.CSR32) (matrix.Format, error) { return c, nil })
	benchMulAdd(b, k, y, x, fl)
}

func BenchmarkKernelBCSR4x4_FEMCantilever(b *testing.B) {
	k, y, x, fl := hostKernel(b, "FEM/Cantilever", func(c *matrix.CSR32) (matrix.Format, error) {
		return matrix.NewBCSR[uint16](c, matrix.BlockShape{R: 4, C: 4})
	})
	benchMulAdd(b, k, y, x, fl)
}

func BenchmarkKernelTuned_FEMCantilever(b *testing.B) {
	k, y, x, fl := hostKernel(b, "FEM/Cantilever", func(c *matrix.CSR32) (matrix.Format, error) {
		res, err := tune.Tune(c, tune.DefaultOptions())
		if err != nil {
			return nil, err
		}
		return res.Enc, nil
	})
	benchMulAdd(b, k, y, x, fl)
}

func BenchmarkKernelCSR_Webbase(b *testing.B) {
	k, y, x, fl := hostKernel(b, "webbase", func(c *matrix.CSR32) (matrix.Format, error) { return c, nil })
	benchMulAdd(b, k, y, x, fl)
}

func BenchmarkKernelTuned_Webbase(b *testing.B) {
	k, y, x, fl := hostKernel(b, "webbase", func(c *matrix.CSR32) (matrix.Format, error) {
		res, err := tune.Tune(c, tune.DefaultOptions())
		if err != nil {
			return nil, err
		}
		return res.Enc, nil
	})
	benchMulAdd(b, k, y, x, fl)
}

func BenchmarkKernelParallel_FEMShip(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			coo, err := gen.GenerateByName("FEM/Ship", 0.05, 3)
			if err != nil {
				b.Fatal(err)
			}
			m := spmvMatrixFromCOO(b, coo)
			op, err := spmv.CompileParallel(m, spmv.DefaultTuneOptions(), threads, 1)
			if err != nil {
				b.Fatal(err)
			}
			_, cols := op.Dims()
			rows, _ := op.Dims()
			x := make([]float64, cols)
			for i := range x {
				x[i] = 1
			}
			y := make([]float64, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op.MulAdd(y, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md). ---

// BenchmarkAblationIndexWidth isolates the 16- vs 32-bit index choice.
func BenchmarkAblationIndexWidth(b *testing.B) {
	for _, width := range []string{"16", "32"} {
		b.Run("bits="+width, func(b *testing.B) {
			k, y, x, fl := hostKernel(b, "FEM/Harbor", func(c *matrix.CSR32) (matrix.Format, error) {
				if width == "16" {
					return matrix.NewBCSR[uint16](c, matrix.BlockShape{R: 2, C: 2})
				}
				return matrix.NewBCSR[uint32](c, matrix.BlockShape{R: 2, C: 2})
			})
			benchMulAdd(b, k, y, x, fl)
		})
	}
}

// BenchmarkAblationBlockShape sweeps all nine register-block shapes.
func BenchmarkAblationBlockShape(b *testing.B) {
	for _, shape := range matrix.BlockShapes {
		b.Run(shape.String(), func(b *testing.B) {
			k, y, x, fl := hostKernel(b, "FEM/Spheres", func(c *matrix.CSR32) (matrix.Format, error) {
				return matrix.NewBCSR[uint32](c, shape)
			})
			benchMulAdd(b, k, y, x, fl)
		})
	}
}

// BenchmarkAblationCSRVariant compares the three §4.1 loop structures.
func BenchmarkAblationCSRVariant(b *testing.B) {
	for _, v := range []kernel.Variant{kernel.Naive, kernel.SingleLoop, kernel.Branchless} {
		b.Run(v.String(), func(b *testing.B) {
			coo, err := gen.GenerateByName("Economics", 0.05, 3)
			if err != nil {
				b.Fatal(err)
			}
			csr, err := matrix.NewCSR[uint32](coo)
			if err != nil {
				b.Fatal(err)
			}
			k, err := kernel.CompileCSR(csr, v)
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, csr.C)
			for i := range x {
				x[i] = 1
			}
			y := make([]float64, csr.R)
			benchMulAdd(b, k, y, x, 2*csr.NNZ())
		})
	}
}

// BenchmarkAblationBCOOvsBCSR compares the two blocked formats on an
// empty-row-heavy matrix (where the paper prefers BCOO).
func BenchmarkAblationBCOOvsBCSR(b *testing.B) {
	mks := map[string]func(*matrix.CSR32) (matrix.Format, error){
		"bcsr": func(c *matrix.CSR32) (matrix.Format, error) {
			return matrix.NewBCSR[uint32](c, matrix.BlockShape{R: 1, C: 2})
		},
		"bcoo": func(c *matrix.CSR32) (matrix.Format, error) {
			return matrix.NewBCOO[uint32](c, matrix.BlockShape{R: 1, C: 2})
		},
	}
	for name, mk := range mks {
		b.Run(name, func(b *testing.B) {
			k, y, x, fl := hostKernel(b, "webbase", mk)
			benchMulAdd(b, k, y, x, fl)
		})
	}
}

// BenchmarkAblationMultiVec measures the multiple-vectors amortization:
// Gflop/s should grow with k as the matrix stream is shared.
func BenchmarkAblationMultiVec(b *testing.B) {
	coo, err := gen.GenerateByName("FEM/Harbor", 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	csr, err := matrix.NewCSR[uint32](coo)
	if err != nil {
		b.Fatal(err)
	}
	for _, nv := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", nv), func(b *testing.B) {
			mv, err := kernel.NewMultiVec(csr, nv)
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, csr.C*nv)
			for i := range x {
				x[i] = 1
			}
			y := make([]float64, csr.R*nv)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mv.MulAdd(y, x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			secPerOp := b.Elapsed().Seconds() / float64(b.N)
			if secPerOp > 0 {
				b.ReportMetric(float64(2*csr.NNZ()*int64(nv))/secPerOp/1e9, "host-Gflops")
			}
		})
	}
}

// BenchmarkAblationParallelStrategy compares the three §4.3 decomposition
// strategies on the same matrix and thread count.
func BenchmarkAblationParallelStrategy(b *testing.B) {
	coo, err := gen.GenerateByName("LP", 0.03, 3)
	if err != nil {
		b.Fatal(err)
	}
	csr, err := matrix.NewCSR[uint32](coo)
	if err != nil {
		b.Fatal(err)
	}
	const threads = 4
	x := make([]float64, csr.C)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, csr.R)

	kernels := map[string]kernel.Kernel{}
	{
		part, err := partition.ByNNZ(csr.RowPtr, threads)
		if err != nil {
			b.Fatal(err)
		}
		var parts []kernel.Part
		for _, rg := range part.Ranges {
			sub := csr.SubmatrixCOO(rg.Lo, rg.Hi, 0, csr.C)
			enc, err := matrix.NewCSR[uint32](sub)
			if err != nil {
				b.Fatal(err)
			}
			parts = append(parts, kernel.Part{Range: rg, Enc: enc})
		}
		rk, err := kernel.NewParallel(csr.R, csr.C, parts)
		if err != nil {
			b.Fatal(err)
		}
		kernels["rows"] = rk
	}
	{
		spans := partition.FixedWidthSpans(csr.C, (csr.C+threads-1)/threads)
		var parts []kernel.ColPart
		for _, s := range spans {
			sub := csr.SubmatrixCOO(0, csr.R, s.Lo, s.Hi)
			enc, err := matrix.NewCSR[uint32](sub)
			if err != nil {
				b.Fatal(err)
			}
			parts = append(parts, kernel.ColPart{Span: s, Enc: enc})
		}
		ck, err := kernel.NewParallelColumns(csr.R, csr.C, parts)
		if err != nil {
			b.Fatal(err)
		}
		kernels["columns"] = ck
	}
	{
		sk, err := kernel.NewSegmentedScan(csr, threads)
		if err != nil {
			b.Fatal(err)
		}
		kernels["segscan"] = sk
	}
	for _, name := range []string{"rows", "columns", "segscan"} {
		b.Run(name, func(b *testing.B) {
			k := kernels[name]
			for i := 0; i < b.N; i++ {
				if err := k.MulAdd(y, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTunerOverhead measures the one-pass heuristic itself (the paper
// notes future work will parallelize this step).
func BenchmarkTunerOverhead(b *testing.B) {
	coo, err := gen.GenerateByName("FEM/Cantilever", 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	csr, err := matrix.NewCSR[uint32](coo)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tune.Tune(csr, tune.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// spmvMatrixFromCOO rebuilds a public-API matrix from an internal COO.
func spmvMatrixFromCOO(b *testing.B, coo *matrix.COO) *spmv.Matrix {
	b.Helper()
	r, c := coo.Dims()
	m := spmv.NewMatrix(r, c)
	for k := range coo.Val {
		if err := m.Set(int(coo.RowIdx[k]), int(coo.ColIdx[k]), coo.Val[k]); err != nil {
			b.Fatal(err)
		}
	}
	return m
}
